"""Classification baselines: decision tree and sequential-covering rules.

The paper argues (Section III.A) that "traditional classification
techniques such as decision trees and rule induction are not suitable
for the task" because "a typical classification algorithm only finds a
very small subset of the rules that exist in data ... We call this the
completeness problem".

To make that argument testable we implement both learners from scratch:

* :class:`DecisionTree` — an ID3-style tree on categorical data with
  information-gain splits, depth and minimum-leaf controls, and rule
  extraction (one rule per leaf).
* :func:`sequential_covering` — a CN2-lite rule inducer: greedily grow
  one high-precision rule per iteration, remove covered records,
  repeat.

The ``benchmarks/bench_ablations.py`` harness counts the rules these
produce versus the complete rule space a rule cube stores, reproducing
the completeness gap the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dataset.schema import MISSING
from ..dataset.table import Dataset
from .car import ClassAssociationRule, Condition

__all__ = ["DecisionTree", "TreeNode", "sequential_covering"]


def _entropy_from_counts(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


class TreeNode:
    """One node of a :class:`DecisionTree`.

    Internal nodes carry the split attribute and one child per value;
    leaves carry the class counts observed during training.
    """

    __slots__ = ("attribute", "children", "class_counts", "depth")

    def __init__(
        self,
        class_counts: np.ndarray,
        depth: int,
        attribute: Optional[str] = None,
        children: Optional[Dict[str, "TreeNode"]] = None,
    ) -> None:
        self.class_counts = class_counts
        self.depth = depth
        self.attribute = attribute
        self.children = children or {}

    @property
    def is_leaf(self) -> bool:
        """True when the node has no split."""
        return self.attribute is None

    @property
    def prediction(self) -> int:
        """Majority class code at this node."""
        return int(np.argmax(self.class_counts))

    def size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return 1 + sum(child.size() for child in self.children.values())

    def n_leaves(self) -> int:
        """Number of leaves in the subtree rooted here."""
        if self.is_leaf:
            return 1
        return sum(child.n_leaves() for child in self.children.values())


class DecisionTree:
    """ID3-style decision tree over fully categorical data.

    Parameters
    ----------
    max_depth:
        Maximum number of splits on any root-to-leaf path.
    min_leaf:
        Minimum number of records a node must hold to be split.
    """

    def __init__(self, max_depth: int = 6, min_leaf: int = 2) -> None:
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if min_leaf < 1:
            raise ValueError("min_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.root_: Optional[TreeNode] = None
        self._schema = None

    # ------------------------------------------------------------------

    def fit(self, dataset: Dataset) -> "DecisionTree":
        """Grow the tree on ``dataset`` (must be fully categorical)."""
        schema = dataset.schema
        for attr in schema.condition_attributes:
            if not attr.is_categorical:
                raise ValueError(
                    f"decision tree requires categorical attributes; "
                    f"{attr.name!r} is continuous"
                )
        self._schema = schema
        columns = {
            a.name: dataset.column(a.name)
            for a in schema.condition_attributes
        }
        y = dataset.class_codes
        rows = np.arange(dataset.n_rows)
        available = [a.name for a in schema.condition_attributes]
        self.root_ = self._grow(columns, y, rows, available, depth=0)
        return self

    def _grow(
        self,
        columns: Dict[str, np.ndarray],
        y: np.ndarray,
        rows: np.ndarray,
        available: List[str],
        depth: int,
    ) -> TreeNode:
        n_classes = self._schema.n_classes
        sub_y = y[rows]
        counts = np.bincount(
            sub_y[sub_y >= 0], minlength=n_classes
        ).astype(np.int64)
        node = TreeNode(counts, depth)
        if (
            depth >= self.max_depth
            or rows.size < self.min_leaf
            or not available
            or _entropy_from_counts(counts) == 0.0
        ):
            return node

        # Classic ID3 takes the maximum-gain attribute even when every
        # gain is zero (XOR-style interactions only pay off one level
        # deeper); depth and leaf-size limits bound the tree instead.
        base = _entropy_from_counts(counts)
        best_gain = -1.0
        best_attr: Optional[str] = None
        for name in available:
            col = columns[name][rows]
            gain = base
            for code in np.unique(col):
                if code == MISSING:
                    continue
                part = sub_y[col == code]
                part_counts = np.bincount(
                    part[part >= 0], minlength=n_classes
                )
                gain -= (
                    part.size / rows.size
                ) * _entropy_from_counts(part_counts)
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_attr = name

        if best_attr is None:
            return node

        node.attribute = best_attr
        attr = self._schema[best_attr]
        col = columns[best_attr][rows]
        remaining = [a for a in available if a != best_attr]
        for code, value in enumerate(attr.values):
            child_rows = rows[col == code]
            if child_rows.size == 0:
                continue
            node.children[value] = self._grow(
                columns, y, child_rows, remaining, depth + 1
            )
        return node

    # ------------------------------------------------------------------

    def predict(self, dataset: Dataset) -> np.ndarray:
        """Predict class codes for every row of ``dataset``."""
        if self.root_ is None:
            raise ValueError("fit() must be called before predict()")
        out = np.empty(dataset.n_rows, dtype=np.int64)
        columns = {
            a.name: dataset.column(a.name)
            for a in dataset.schema.condition_attributes
        }
        for i in range(dataset.n_rows):
            node = self.root_
            while not node.is_leaf:
                attr = dataset.schema[node.attribute]
                code = int(columns[node.attribute][i])
                value = (
                    attr.value_of(code) if code != MISSING else None
                )
                child = node.children.get(value)
                if child is None:
                    break
                node = child
            out[i] = node.prediction
        return out

    def accuracy(self, dataset: Dataset) -> float:
        """Fraction of rows whose class the tree predicts correctly."""
        pred = self.predict(dataset)
        truth = dataset.class_codes
        mask = truth >= 0
        if not mask.any():
            return 0.0
        return float((pred[mask] == truth[mask]).mean())

    def extract_rules(self) -> List[ClassAssociationRule]:
        """One rule per leaf: the root-to-leaf conditions imply the
        leaf's majority class.

        The returned set is *exactly* what the paper's completeness
        argument is about: it is a small subset of the full rule space
        and loses the context of sibling values that never formed a
        leaf.
        """
        if self.root_ is None:
            raise ValueError("fit() must be called before extract_rules()")
        total = int(self.root_.class_counts.sum())
        class_attr = self._schema.class_attribute
        rules: List[ClassAssociationRule] = []

        def walk(node: TreeNode, conditions: Tuple[Condition, ...]) -> None:
            if node.is_leaf:
                count = int(node.class_counts[node.prediction])
                node_total = int(node.class_counts.sum())
                rules.append(
                    ClassAssociationRule(
                        conditions=conditions,
                        class_label=class_attr.value_of(node.prediction),
                        support_count=count,
                        support=count / total if total else 0.0,
                        confidence=(
                            count / node_total if node_total else 0.0
                        ),
                    )
                )
                return
            for value, child in node.children.items():
                walk(
                    child,
                    conditions + (Condition(node.attribute, value),),
                )

        walk(self.root_, ())
        return rules


def sequential_covering(
    dataset: Dataset,
    target_class: str,
    min_coverage: int = 5,
    min_precision: float = 0.6,
    max_conditions: int = 3,
    max_rules: int = 50,
) -> List[ClassAssociationRule]:
    """CN2-lite sequential covering for one target class.

    Greedily grows a conjunctive rule maximising precision on the
    uncovered records, emits it, removes the covered records and
    repeats until no rule clears ``min_precision``/``min_coverage``.
    Like the decision tree, this is a *selective* learner and is used to
    demonstrate the completeness problem.
    """
    schema = dataset.schema
    class_attr = schema.class_attribute
    target_code = class_attr.code_of(target_class)
    y = dataset.class_codes
    n_total = dataset.n_rows

    columns = {
        a.name: dataset.column(a.name) for a in schema.condition_attributes
    }
    uncovered = np.ones(n_total, dtype=bool)
    rules: List[ClassAssociationRule] = []

    while len(rules) < max_rules:
        conditions: List[Condition] = []
        mask = uncovered.copy()
        used = set()
        improved = True
        while improved and len(conditions) < max_conditions:
            improved = False
            best: Optional[Tuple[float, int, Condition, np.ndarray]] = None
            for attr in schema.condition_attributes:
                if attr.name in used:
                    continue
                col = columns[attr.name]
                for code, value in enumerate(attr.values):
                    cand = mask & (col == code)
                    pos = int((y[cand] == target_code).sum())
                    cov = int(cand.sum())
                    if cov < min_coverage or pos == 0:
                        continue
                    precision = pos / cov
                    key = (precision, pos)
                    if best is None or key > (best[0], best[1]):
                        best = (
                            precision,
                            pos,
                            Condition(attr.name, value),
                            cand,
                        )
            if best is None:
                break
            current_pos = int((y[mask] == target_code).sum())
            current_cov = int(mask.sum())
            current_precision = (
                current_pos / current_cov if current_cov else 0.0
            )
            if conditions and best[0] <= current_precision + 1e-12:
                break
            conditions.append(best[2])
            used.add(best[2].attribute)
            mask = best[3]
            improved = True

        if not conditions:
            break
        pos = int((y[mask] == target_code).sum())
        cov = int(mask.sum())
        precision = pos / cov if cov else 0.0
        if precision < min_precision or cov < min_coverage:
            break
        rules.append(
            ClassAssociationRule(
                conditions=tuple(sorted(conditions)),
                class_label=target_class,
                support_count=pos,
                support=pos / n_total if n_total else 0.0,
                confidence=precision,
            )
        )
        uncovered &= ~mask
        if not uncovered.any():
            break
    return rules

"""Rule-cube persistence.

The deployed system splits work into an off-line generation phase
("done off-line, e.g., in the evening") and an interactive exploration
phase.  That split only pays off if the generated cubes survive the
process boundary; this module serialises a :class:`CubeStore`'s
materialised cubes — plus enough schema to rebuild them — into a
single compressed ``.npz`` archive.

Format (one flat npz):

* ``__meta__`` — a JSON document with the class attribute, every
  attribute's value domain, and the ordered list of cube keys;
* one array per cube, named ``cube_<i>`` in key-list order, holding
  the count tensor.

Loading returns plain :class:`RuleCube` objects keyed like the store
cache; :func:`load_store_cubes` injects them into a fresh store so the
interactive phase starts warm without touching the raw records.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..dataset.schema import Attribute, Schema
from ..testing.sites import SITE_PERSIST_LOAD, trip
from .rulecube import CubeError, RuleCube
from .store import CubeStore

__all__ = [
    "save_cubes",
    "load_cubes",
    "load_store_cubes",
    "archive_schema",
    "archive_wal_seq",
    "archive_generation",
]

PathLike = Union[str, Path]

_META_KEY = "__meta__"


def save_cubes(
    store: CubeStore,
    path: PathLike,
    wal_seq: int = 0,
    generation: Optional[int] = None,
) -> int:
    """Write every cube materialised in ``store`` to ``path``.

    Returns the number of cubes written.  Call
    :meth:`CubeStore.precompute` first to persist the full 2-D/3-D
    inventory.

    ``wal_seq`` records the highest write-ahead-log sequence number
    whose batch the persisted counts already contain.  A warm start
    from this archive passes it as ``start_after`` to WAL replay
    (:func:`archive_wal_seq` reads it back), so a batch is never
    counted twice — once from the archive and once from the log.
    Callers must quiesce absorbs while capturing ``wal_seq`` and the
    cubes, or the pair can disagree.

    ``generation`` stamps the store generation the counts belong to
    (defaults to the store's current one).  A multi-process parent
    persisting while workers serve records the generation its
    shared-memory manifest published, so an archive and a publish of
    the same counts carry the same stamp
    (:func:`archive_generation` reads it back).
    """
    path = Path(path)
    schema = store.dataset.schema
    if generation is None:
        generation = store.generation
    cubes: Dict[str, np.ndarray] = {}
    keys = []
    for i, (key_tuple, cube) in enumerate(
        sorted(store.cached_items().items())
    ):
        cubes[f"cube_{i}"] = cube.counts
        keys.append(list(key_tuple))

    domains = {}
    for attr in schema:
        if attr.is_categorical:
            domains[attr.name] = list(attr.values)
    meta = {
        "class_attribute": schema.class_name,
        "domains": domains,
        "keys": keys,
        "format": 1,
        "generation": int(generation),
    }
    if wal_seq:
        meta["wal_seq"] = int(wal_seq)
    arrays = dict(cubes)
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return len(cubes)


def load_cubes(path: PathLike) -> Dict[Tuple[str, ...], RuleCube]:
    """Load cubes from an archive written by :func:`save_cubes`.

    A declared fault site (``persist.load``): chaos runs can fail the
    archive read mid-warm-start (see :mod:`repro.testing`).
    """
    path = Path(path)
    trip(SITE_PERSIST_LOAD, path=str(path))
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise CubeError(f"{path} is not a rule-cube archive")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        domains = meta["domains"]
        class_name = meta["class_attribute"]
        class_attr = Attribute(class_name, values=domains[class_name])

        out: Dict[Tuple[str, ...], RuleCube] = {}
        for i, key_list in enumerate(meta["keys"]):
            key_tuple = tuple(key_list)
            counts = archive[f"cube_{i}"]
            attrs = [
                Attribute(name, values=domains[name])
                for name in key_tuple
            ]
            out[key_tuple] = RuleCube(attrs, class_attr, counts)
        return out


def archive_schema(path: PathLike) -> "Schema":
    """Rebuild a :class:`~repro.dataset.Schema` from archive metadata.

    The archive stores every categorical attribute's value domain plus
    the class designation — enough to reconstruct the (categorical)
    schema without the raw records.  This is how the serving layer
    warm-starts a store in a process that never saw the data:
    ``repro serve --store cubes.npz``.
    """
    path = Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise CubeError(f"{path} is not a rule-cube archive")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
    attrs = [
        Attribute(name, values=tuple(values))
        for name, values in meta["domains"].items()
    ]
    return Schema(attrs, class_attribute=meta["class_attribute"])


def archive_wal_seq(path: PathLike) -> int:
    """The ``wal_seq`` an archive was persisted at (0 if absent).

    Archives written before the WAL existed (or without one bound)
    carry no ``wal_seq``; replaying a log from 0 into them is only
    correct if the log was compacted at persist time — the serve path
    warns when it finds a non-empty log behind a wal_seq-less archive.
    """
    path = Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise CubeError(f"{path} is not a rule-cube archive")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
    return int(meta.get("wal_seq", 0))


def archive_generation(path: PathLike) -> int:
    """The store generation an archive was persisted at (0 if absent).

    Archives written before the stamp existed read as generation 0 —
    the generation every fresh store starts from, so warm starts from
    legacy archives behave exactly as before.
    """
    path = Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise CubeError(f"{path} is not a rule-cube archive")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
    return int(meta.get("generation", 0))


def load_store_cubes(store: CubeStore, path: PathLike) -> int:
    """Warm a store's cache from an archive.

    The archive's schema must agree with the store's data set (same
    class attribute and value domains); mismatches raise
    :class:`CubeError` rather than silently mixing incompatible
    counts.  Returns the number of cubes injected.
    """
    cubes = load_cubes(path)
    injected = 0
    for key_tuple, cube in cubes.items():
        store.inject(key_tuple, cube)
        injected += 1
    return injected

"""Shared-memory snapshot publication: one writer, N reader processes.

The in-process serving tier scales reads with threads, but the GIL
caps a ``ThreadingHTTPServer`` at roughly one core of kernel work.
The pre-fork tier (:mod:`repro.service.prefork`) scales across cores
instead: a **parent** process owns the mutable stores (and the WAL —
the single-writer discipline is unchanged) and *publishes* each
snapshot's count tensors into a POSIX shared-memory segment; **worker**
processes attach read-only views and rebuild the cube cache without
recounting a single record — warm start is O(manifest), and all
workers share one physical copy of the counts through the page cache.

Wire format (one segment per published generation)
--------------------------------------------------

::

    repro_<token>_g<gen>:
        [8-byte magic "RPSHMv1\\0"]
        [u64 manifest length]
        [manifest JSON, utf-8]
        [64-byte-aligned count tensors, back to back]

The manifest carries, per store: its name, kind (``single`` /
``sharded``), the categorical schema (class attribute + value
domains, the same shape :mod:`repro.cube.persist` archives), the
condition-attribute tuple, the store generation (an int, or the
vector clock for a sharded store), the WAL sequence the counts
contain, and per shard the cube directory — canonical key, byte
offset, shape and dtype of each count tensor.

A tiny control segment ``repro_<token>_ctl`` holds the **publish
stamp** (a u64 generation counter, bumped after the segment for that
generation is fully written) plus one u64 ack slot per worker.
Readers poll the stamp — one 8-byte read — at the top of every
request; on a change they attach the new segment, rebuild the cube
views (zero-copy ``np.ndarray`` over the mapped buffer) and install
them into their local stores with
:meth:`~repro.cube.store.CubeStore.install_cache`, which preserves
the engine's generation-invalidation and the store's ``pinned()``
torn-free semantics exactly as an in-process absorb would.

Publish/retire handshake
------------------------

* ``publish`` writes the *new* segment completely, then bumps the
  stamp, then unlinks segments older than the previous generation.
  The previous generation's segment is kept linked for one cycle so a
  reader that loaded the stamp just before the bump can still open it;
  a reader that loses even that race sees ``FileNotFoundError``,
  re-reads the stamp and retries — it can only ever end up *newer*.
* Readers never ``close()`` a segment that still backs live cube
  views: an unlinked POSIX segment stays mapped until the last opener
  unmaps it, so a long-pinned reader on an old snapshot keeps exactly
  the torn-free view it pinned.  Liveness is tracked explicitly — a
  per-segment anchor object is retained by every snapshot built from
  the segment, and a ``weakref.finalize`` on the anchor closes the
  mapping only once the last such snapshot is garbage.  (Relying on
  ``close()`` raising ``BufferError`` under live views does not work:
  numpy re-acquires the buffer from the underlying ``mmap`` and drops
  the export count, so ``close()`` *succeeds* and the next cube read
  is a use-after-unmap segfault.)
* All unlinking is pid-guarded: a forked worker inherits the parent's
  publisher object, and its exit must never tear down segments the
  parent still serves.

Subscribers must be fork children of the publisher (the pre-fork tier
guarantees this): they then share the publisher's resource-tracker
process, so 3.11's attach-side tracker registration is harmless — see
:func:`_attach`.
"""

from __future__ import annotations

import atexit
import json
import os
import struct
import threading
import time
import weakref
from multiprocessing import shared_memory
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..dataset.schema import Attribute, Schema
from ..dataset.table import Dataset
from .rulecube import RuleCube
from .sharded import ShardedCubeStore, _DatasetFacade
from .store import CubeStore

__all__ = [
    "ShmError",
    "SnapshotPublisher",
    "SnapshotSubscriber",
    "segment_name",
    "control_name",
    "list_segments",
]

_MAGIC = b"RPSHMv1\0"
_HEADER = struct.Struct("<8sQ")  # magic, manifest length
_ALIGN = 64

_CTL_MAGIC = b"RPSHMCTL"
#: magic, publish stamp, slot count
_CTL_HEADER = struct.Struct("<8sQQ")
_CTL_SLOT = struct.Struct("<Q")


class ShmError(RuntimeError):
    """Raised for malformed segments or a torn publish protocol."""


def segment_name(token: str, generation: int) -> str:
    """The shm name of one published generation."""
    return f"repro_{token}_g{generation}"


def control_name(token: str) -> str:
    """The shm name of the control (stamp + acks) segment."""
    return f"repro_{token}_ctl"


def list_segments(token: str) -> List[str]:
    """Names of this token's segments currently linked in ``/dev/shm``.

    Linux-only introspection for tests and the shutdown leak check;
    returns ``[]`` where ``/dev/shm`` does not exist.
    """
    prefix = f"repro_{token}_"
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(prefix))


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment by name.

    3.11's ``SharedMemory`` registers attaches with the resource
    tracker exactly like creates (3.12 grew ``track=False`` for this).
    That is safe *here* because subscribers are fork children of the
    publisher and share its tracker process: the tracker's cache is a
    set, so the attach-side register is an idempotent no-op against
    the creator's entry, and the shared tracker still unlinks leaked
    segments if the whole family crashes.  A subscriber in an
    unrelated process (its own tracker) would instead have its tracker
    unlink the live segment at exit — do not attach from one.
    """
    return shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# Manifest capture (parent side)
# ----------------------------------------------------------------------


def _schema_meta(schema: Schema) -> Dict[str, object]:
    # Continuous columns have no reconstructible domain and can never
    # appear on a cube axis; a worker's attach-only schema keeps the
    # categorical columns only (the same shape persist.py archives).
    names = [attr.name for attr in schema if attr.is_categorical]
    domains = {name: list(schema[name].values) for name in names}
    return {
        "class_attribute": schema.class_name,
        "domains": domains,
        "names": names,
    }


def _schema_from_meta(meta: Mapping[str, object]) -> Schema:
    domains = meta["domains"]
    attrs = [
        Attribute(name, values=tuple(domains[name]))
        for name in meta["names"]
    ]
    return Schema(attrs, class_attribute=meta["class_attribute"])


def _capture_shard(snapshot) -> Tuple[List[Dict[str, object]], List[np.ndarray]]:
    """One shard snapshot's cube directory + tensors, offsets unset."""
    entries: List[Dict[str, object]] = []
    tensors: List[np.ndarray] = []
    for key in sorted(snapshot.cache):
        counts = snapshot.cache[key].counts
        entries.append(
            {
                "key": list(key),
                "shape": list(counts.shape),
                "dtype": str(counts.dtype),
                "nbytes": int(counts.nbytes),
            }
        )
        tensors.append(counts)
    return entries, tensors


def _capture_store(
    name: str, store: object, wal_seq: object
) -> Tuple[Dict[str, object], List[np.ndarray]]:
    """One store's manifest entry + tensors (pinned, torn-free)."""
    # The class-distribution cube is built lazily on first comparison;
    # a worker cannot build it (its backing dataset is empty), so make
    # sure it is materialised — and therefore published — up front.
    store.class_distribution_cube()
    tensors: List[np.ndarray] = []
    if isinstance(store, ShardedCubeStore):
        with store.pinned() as snapshot:
            shards = []
            for snap in snapshot.snapshots:
                entries, shard_tensors = _capture_shard(snap)
                shards.append(
                    {
                        "cubes": entries,
                        "generation": snap.generation,
                        "n_rows": snap.dataset.n_rows,
                    }
                )
                tensors.extend(shard_tensors)
            entry: Dict[str, object] = {
                "name": name,
                "kind": "sharded",
                "shard_by": store.shard_by,
                "generation": list(snapshot.generation),
                "n_rows": snapshot.n_rows,
                "schema": _schema_meta(store.dataset.schema),
                "attributes": list(store.attributes),
                "shards": shards,
            }
    else:
        with store.pinned() as snapshot:
            entries, tensors = _capture_shard(snapshot)
            entry = {
                "name": name,
                "kind": "single",
                "generation": snapshot.generation,
                "n_rows": snapshot.dataset.n_rows,
                "schema": _schema_meta(snapshot.dataset.schema),
                "attributes": list(store.attributes),
                "shards": [
                    {
                        "cubes": entries,
                        "generation": snapshot.generation,
                        "n_rows": snapshot.dataset.n_rows,
                    }
                ],
            }
    if wal_seq is not None:
        entry["wal_seq"] = wal_seq
    return entry, tensors


def _layout(manifest: Dict[str, object], tensor_count: int) -> Tuple[bytes, List[int], int]:
    """Assign aligned offsets; returns (manifest bytes, offsets, total).

    Offsets are patched into the manifest before encoding, so the
    encode runs twice: once to size the header region, once final.
    """
    # First pass with zero offsets to find the manifest's encoded size.
    flat: List[Dict[str, object]] = []
    for store in manifest["stores"]:
        for shard in store["shards"]:
            flat.extend(shard["cubes"])
    if len(flat) != tensor_count:
        raise ShmError("manifest/tensor count mismatch")

    def encode() -> bytes:
        return json.dumps(manifest, separators=(",", ":")).encode("utf-8")

    # Offsets shift the manifest length (more digits), which shifts the
    # offsets; iterate until stable (two passes suffice in practice,
    # bounded defensively).
    for entry in flat:
        entry["offset"] = 0
    for _ in range(5):
        blob = encode()
        base = _HEADER.size + len(blob)
        offset = (base + _ALIGN - 1) // _ALIGN * _ALIGN
        offsets: List[int] = []
        for entry in flat:
            offsets.append(offset)
            entry["offset"] = offset
            offset += int(entry["nbytes"])
            offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        new_blob = encode()
        if len(new_blob) == len(blob):
            return new_blob, offsets, max(offset, _HEADER.size + len(new_blob))
    raise ShmError("manifest layout did not converge")


class SnapshotPublisher:
    """Parent-side publication of store snapshots into shared memory.

    Parameters
    ----------
    token:
        Short hex string naming this publisher's segment family; a
        fresh one is derived from the pid and a counter when omitted.
    slots:
        Number of worker ack slots in the control segment.
    """

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(self, token: Optional[str] = None, slots: int = 8) -> None:
        if slots < 1:
            raise ShmError("slots must be positive")
        if token is None:
            with SnapshotPublisher._counter_lock:
                SnapshotPublisher._counter += 1
                n = SnapshotPublisher._counter
            token = f"{os.getpid():x}{n:x}"
        self._token = token
        self._slots = slots
        self._owner_pid = os.getpid()
        self._lock = threading.Lock()
        self._generation = 0
        #: generation -> SharedMemory we created (linked until retired)
        self._segments: Dict[int, shared_memory.SharedMemory] = {}
        size = _CTL_HEADER.size + slots * _CTL_SLOT.size
        self._control = shared_memory.SharedMemory(
            name=control_name(token), create=True, size=size
        )
        _CTL_HEADER.pack_into(
            self._control.buf, 0, _CTL_MAGIC, 0, slots
        )
        for i in range(slots):
            _CTL_SLOT.pack_into(
                self._control.buf,
                _CTL_HEADER.size + i * _CTL_SLOT.size,
                0,
            )
        self._closed = False
        atexit.register(self.close)

    @property
    def token(self) -> str:
        return self._token

    @property
    def generation(self) -> int:
        """The last published generation (0 before the first publish)."""
        with self._lock:
            return self._generation

    def publish(
        self,
        stores: Mapping[str, object],
        wal_seqs: Optional[Mapping[str, object]] = None,
    ) -> int:
        """Publish one consistent snapshot of every store.

        Captures each store under its own ``pinned()`` block (each
        capture is torn-free per store; the set as a whole is as
        consistent as any multi-store read), writes the segment, bumps
        the stamp, retires old segments.  Returns the new publish
        generation.
        """
        if os.getpid() != self._owner_pid:
            raise ShmError("publish() called from a non-owner process")
        wal_seqs = wal_seqs or {}
        with self._lock:
            if self._closed:
                raise ShmError("publisher is closed")
            generation = self._generation + 1
            entries: List[Dict[str, object]] = []
            tensors: List[np.ndarray] = []
            for name in sorted(stores):
                entry, store_tensors = _capture_store(
                    name, stores[name], wal_seqs.get(name)
                )
                entries.append(entry)
                tensors.extend(store_tensors)
            manifest: Dict[str, object] = {
                "format": 1,
                "generation": generation,
                "stores": entries,
            }
            blob, offsets, total = _layout(manifest, len(tensors))
            segment = shared_memory.SharedMemory(
                name=segment_name(self._token, generation),
                create=True,
                size=max(total, 1),
            )
            _HEADER.pack_into(segment.buf, 0, _MAGIC, len(blob))
            segment.buf[_HEADER.size:_HEADER.size + len(blob)] = blob
            for offset, tensor in zip(offsets, tensors):
                view = np.ndarray(
                    tensor.shape,
                    dtype=tensor.dtype,
                    buffer=segment.buf,
                    offset=offset,
                )
                np.copyto(view, tensor)
                del view
            # The segment is complete: land the stamp, then retire
            # everything older than the previous generation.
            _CTL_HEADER.pack_into(
                self._control.buf, 0, _CTL_MAGIC, generation, self._slots
            )
            self._generation = generation
            self._segments[generation] = segment
            for old in [g for g in self._segments if g < generation - 1]:
                self._retire(old)
            return generation

    def _retire(self, generation: int) -> None:
        # Caller holds the lock.  Unlink removes the name; readers that
        # already mapped the segment keep their views.
        segment = self._segments.pop(generation, None)
        if segment is None:
            return
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        try:
            segment.close()
        except BufferError:  # a same-process view is still alive
            pass

    def stamp(self) -> int:
        """The publish stamp as a reader would see it."""
        return _CTL_HEADER.unpack_from(self._control.buf, 0)[1]

    def acks(self) -> List[int]:
        """Per-slot generations workers last acknowledged."""
        out = []
        for i in range(self._slots):
            (value,) = _CTL_SLOT.unpack_from(
                self._control.buf, _CTL_HEADER.size + i * _CTL_SLOT.size
            )
            out.append(value)
        return out

    def close(self) -> None:
        """Unlink every live segment and the control block.

        Safe to call repeatedly; a no-op in forked children (they
        inherit this object but must never tear down the parent's
        segments).
        """
        if os.getpid() != self._owner_pid:
            return
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for generation in list(self._segments):
                self._retire(generation)
            try:
                self._control.unlink()
            except FileNotFoundError:
                pass
            try:
                self._control.close()
            except BufferError:
                pass

    def __enter__(self) -> "SnapshotPublisher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _close_quietly(segment: shared_memory.SharedMemory) -> None:
    try:
        segment.close()
    except Exception:
        pass


class _SegmentAnchor:
    """Keeps one attached segment mapped while any snapshot needs it.

    Every :class:`~repro.cube.store._Snapshot` built from a segment
    retains the same anchor; a ``weakref.finalize`` registered by the
    subscriber closes the mapping when the last retainer is collected.
    The anchor — not the ``SharedMemory`` object — is the liveness
    token because ``SharedMemory.close()`` cannot detect numpy views
    (see the module docstring) and must therefore never run while one
    exists.
    """

    __slots__ = ("segment", "__weakref__")

    def __init__(self, segment: shared_memory.SharedMemory) -> None:
        self.segment = segment
        weakref.finalize(self, _close_quietly, segment)


def _cubes_from_shard(
    shard_meta: Mapping[str, object],
    schema: Schema,
    buf: memoryview,
) -> Dict[Tuple[str, ...], RuleCube]:
    class_attr = schema.class_attribute
    cubes: Dict[Tuple[str, ...], RuleCube] = {}
    for entry in shard_meta["cubes"]:
        key = tuple(entry["key"])
        shape = tuple(entry["shape"])
        offset = int(entry["offset"])
        # Zero-copy: the ndarray addresses the shared mapping directly
        # (whole-buffer + offset, no slice).  Nothing here protects the
        # mapping's lifetime — that is the retaining anchor's job.
        counts = np.ndarray(
            shape,
            dtype=np.dtype(entry["dtype"]),
            buffer=buf,
            offset=offset,
        )
        counts.setflags(write=False)
        attrs = [schema[name] for name in key]
        cubes[key] = RuleCube(attrs, class_attr, counts)
    return cubes


class SnapshotSubscriber:
    """Worker-side attach/refresh of published snapshots.

    The first :meth:`refresh` builds attach-only store objects
    (:class:`CubeStore` / :class:`ShardedCubeStore` over empty backing
    datasets — workers hold counts, never rows); every later refresh
    installs the new generation's cube views into the *same* store
    objects, so the engine above notices nothing but a generation
    bump, exactly as if an in-process absorb had landed.
    """

    def __init__(
        self,
        token: str,
        slot: Optional[int] = None,
        attach_retries: int = 50,
        retry_sleep: float = 0.02,
    ) -> None:
        self._token = token
        self._slot = slot
        self._attach_retries = attach_retries
        self._retry_sleep = retry_sleep
        self._lock = threading.Lock()
        self._control: Optional[shared_memory.SharedMemory] = None
        #: The current generation's anchor; replaced on refresh.  Old
        #: anchors live exactly as long as the snapshots retaining
        #: them, and their finalizers close the retired mappings.
        self._anchor: Optional[_SegmentAnchor] = None
        self._generation = 0
        self._stores: Dict[str, object] = {}

    # -- control ---------------------------------------------------------

    def connect(self, timeout: float = 10.0) -> None:
        """Attach the control segment (waits for the publisher)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                control = _attach(control_name(self._token))
                break
            except FileNotFoundError:
                if time.monotonic() >= deadline:
                    raise ShmError(
                        f"no publisher control segment for token "
                        f"{self._token!r} after {timeout}s"
                    ) from None
                time.sleep(self._retry_sleep)
        magic, _, slots = _CTL_HEADER.unpack_from(control.buf, 0)
        if magic != _CTL_MAGIC:
            raise ShmError("control segment has a bad magic")
        if self._slot is not None and self._slot >= slots:
            raise ShmError(
                f"slot {self._slot} out of range (control has {slots})"
            )
        self._control = control

    def stamp(self) -> int:
        """The current publish stamp (one shared 8-byte read)."""
        if self._control is None:
            raise ShmError("subscriber is not connected")
        return _CTL_HEADER.unpack_from(self._control.buf, 0)[1]

    @property
    def generation(self) -> int:
        """The publish generation currently installed locally."""
        return self._generation

    def stale(self) -> bool:
        """True when a newer generation has been published."""
        return self.stamp() != self._generation

    def _ack(self, generation: int) -> None:
        if self._slot is None or self._control is None:
            return
        _CTL_SLOT.pack_into(
            self._control.buf,
            _CTL_HEADER.size + self._slot * _CTL_SLOT.size,
            generation,
        )

    # -- attach / install ------------------------------------------------

    def stores(self) -> Dict[str, object]:
        """The attach-only stores (empty before the first refresh)."""
        return dict(self._stores)

    def refresh(self) -> bool:
        """Attach and install the latest generation if newer.

        Returns ``True`` when a swap happened.  Thread-safe: handler
        threads may race; one installs, the rest see ``stale() ==
        False`` afterwards.  Losing the attach race to an even newer
        publish retries against the fresh stamp — a reader only ever
        moves forward.
        """
        if not self.stale():
            return False
        with self._lock:
            target = self.stamp()
            if target == self._generation:
                return False
            for _ in range(self._attach_retries):
                try:
                    segment = _attach(segment_name(self._token, target))
                    break
                except FileNotFoundError:
                    # Retired under us: a newer publish landed between
                    # the stamp read and the attach.  Follow the stamp.
                    newer = self.stamp()
                    if newer == target:
                        time.sleep(self._retry_sleep)
                    target = newer
            else:
                raise ShmError(
                    f"could not attach generation {target} for token "
                    f"{self._token!r}"
                )
            anchor = _SegmentAnchor(segment)
            manifest = self._parse(segment)
            self._install(manifest, anchor)
            # Dropping our reference to the previous anchor hands its
            # lifetime entirely to the snapshots that retain it; the
            # finalizer closes the old mapping once they are gone.
            self._anchor = anchor
            self._generation = int(manifest["generation"])
            self._ack(self._generation)
            return True

    @staticmethod
    def _parse(segment: shared_memory.SharedMemory) -> Dict[str, object]:
        magic, length = _HEADER.unpack_from(segment.buf, 0)
        if magic != _MAGIC:
            raise ShmError("segment has a bad magic")
        raw = bytes(segment.buf[_HEADER.size:_HEADER.size + length])
        return json.loads(raw.decode("utf-8"))

    def _install(
        self,
        manifest: Mapping[str, object],
        anchor: _SegmentAnchor,
    ) -> None:
        buf = anchor.segment.buf
        for entry in manifest["stores"]:
            name = entry["name"]
            schema = _schema_from_meta(entry["schema"])
            attributes = tuple(entry["attributes"])
            shard_cubes = [
                _cubes_from_shard(shard, schema, buf)
                for shard in entry["shards"]
            ]
            generations = [
                int(shard["generation"]) for shard in entry["shards"]
            ]
            datasets = [
                _DatasetFacade(schema, int(shard["n_rows"]))
                for shard in entry["shards"]
            ]
            store = self._stores.get(name)
            if store is None:
                store = self._build_store(entry, schema, attributes)
                self._stores[name] = store
            if isinstance(store, ShardedCubeStore):
                store.install_shard_caches(
                    shard_cubes,
                    generations,
                    retain=anchor,
                    datasets=datasets,
                )
            else:
                store.install_cache(
                    shard_cubes[0],
                    generations[0],
                    retain=anchor,
                    dataset=datasets[0],
                )

    @staticmethod
    def _build_store(
        entry: Mapping[str, object],
        schema: Schema,
        attributes: Tuple[str, ...],
    ) -> object:
        def make_shard() -> CubeStore:
            return CubeStore(Dataset.empty(schema), attributes=attributes)

        if entry["kind"] == "sharded":
            return ShardedCubeStore(
                [make_shard() for _ in entry["shards"]],
                shard_by=entry.get("shard_by"),
            )
        if entry["kind"] != "single":
            raise ShmError(f"unknown store kind {entry['kind']!r}")
        return make_shard()

    def close(self) -> None:
        """Detach this subscriber (never unlinks).

        Drops the store and anchor references; each segment's mapping
        closes via its anchor's finalizer once the last snapshot built
        from it — anywhere in this process — is collected.
        """
        with self._lock:
            self._stores = {}
            self._anchor = None
            if self._control is not None:
                _close_quietly(self._control)
                self._control = None

    def __enter__(self) -> "SnapshotSubscriber":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

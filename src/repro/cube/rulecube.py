"""Rule cubes: data cubes whose cells are rule support counts.

A rule cube (paper, Section III.B) is "like a data cube but stores
rules".  For a chosen attribute subset ``{A_i1, ..., A_ip}`` and the
class attribute ``C``, the cube has ``p + 1`` dimensions; the cell

    ``<A_i1 = v_1, ..., A_ip = v_p, C = c_k>``

holds the number of records matching the full assignment, which is the
support count of the class association rule

    ``A_i1 = v_1, ..., A_ip = v_p  ->  C = c_k``.

Confidence follows the paper's equation (1):

    ``conf = sup(X, c_k) / sum_j sup(X, c_j)``.

Crucially, cubes are built with minimum support and confidence both 0,
so *every* cell is populated — the paper argues this removes the "holes
in the knowledge space" that ordinary rule mining leaves behind.

The cube is stored as a dense ``numpy`` integer tensor whose last axis
is always the class axis.  OLAP-style operations (slice, dice, roll-up)
live in :mod:`repro.cube.olap` and return new cubes.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence, Tuple

import numpy as np

from ..dataset.schema import Attribute
from ..rules.car import ClassAssociationRule, Condition

__all__ = ["RuleCube", "CubeError"]


class CubeError(ValueError):
    """Raised for malformed cube constructions or cell addresses."""


class RuleCube:
    """Dense count tensor over condition attributes plus the class axis.

    Parameters
    ----------
    attributes:
        The condition attributes, in axis order.  May be empty (the
        0-condition cube is just the class distribution).
    class_attribute:
        The class attribute; always the final axis.
    counts:
        Integer tensor of shape ``(*arities, n_classes)``.

    Examples
    --------
    Recreating the paper's Fig. 1 cube is a matter of filling the count
    tensor; see ``tests/test_fig1_example.py`` for the full figure.
    """

    __slots__ = ("_attributes", "_class_attribute", "_counts", "_index")

    def __init__(
        self,
        attributes: Sequence[Attribute],
        class_attribute: Attribute,
        counts: np.ndarray,
    ) -> None:
        attributes = tuple(attributes)
        for attr in attributes:
            if not attr.is_categorical:
                raise CubeError(
                    f"cube attribute {attr.name!r} must be categorical "
                    "(discretise first)"
                )
        if not class_attribute.is_categorical:
            raise CubeError("class attribute must be categorical")
        names = [a.name for a in attributes] + [class_attribute.name]
        if len(set(names)) != len(names):
            raise CubeError(f"duplicate attributes in cube: {names}")
        expected = tuple(a.arity for a in attributes) + (
            class_attribute.arity,
        )
        counts = np.asarray(counts)
        if counts.shape != expected:
            raise CubeError(
                f"count tensor shape {counts.shape} does not match "
                f"attribute arities {expected}"
            )
        if counts.size and counts.min() < 0:
            raise CubeError("cube counts must be non-negative")
        counts = counts.astype(np.int64, copy=False)
        counts.setflags(write=False)
        self._attributes = attributes
        self._class_attribute = class_attribute
        self._counts = counts
        self._index = {a.name: i for i, a in enumerate(attributes)}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """Condition attributes, in axis order."""
        return self._attributes

    @property
    def class_attribute(self) -> Attribute:
        """The class attribute (always the last axis)."""
        return self._class_attribute

    @property
    def counts(self) -> np.ndarray:
        """The read-only count tensor (last axis = class)."""
        return self._counts

    @property
    def n_dims(self) -> int:
        """Total dimensionality including the class axis (``p + 1``)."""
        return len(self._attributes) + 1

    @property
    def names(self) -> Tuple[str, ...]:
        """Condition attribute names, in axis order."""
        return tuple(a.name for a in self._attributes)

    @property
    def n_rules(self) -> int:
        """Number of rules (= cells) the cube represents."""
        return int(self._counts.size)

    def axis_of(self, name: str) -> int:
        """Axis index of the named condition attribute."""
        try:
            return self._index[name]
        except KeyError:
            raise CubeError(
                f"attribute {name!r} is not a dimension of this cube "
                f"(dimensions: {self.names})"
            ) from None

    def attribute(self, name: str) -> Attribute:
        """The condition attribute with the given name."""
        return self._attributes[self.axis_of(name)]

    # ------------------------------------------------------------------
    # Cell addressing
    # ------------------------------------------------------------------

    def _codes_for(self, conditions: Mapping[str, str]) -> Tuple[int, ...]:
        if set(conditions) != set(self._index):
            raise CubeError(
                f"cell address must bind every cube dimension "
                f"{self.names}; got {tuple(conditions)}"
            )
        codes = [0] * len(self._attributes)
        for name, value in conditions.items():
            attr = self._attributes[self._index[name]]
            codes[self._index[name]] = attr.code_of(value)
        return tuple(codes)

    def cell_count(
        self, conditions: Mapping[str, str], class_label: str
    ) -> int:
        """Support count of the cell (= support count of its rule)."""
        codes = self._codes_for(conditions)
        c = self._class_attribute.code_of(class_label)
        return int(self._counts[codes + (c,)])

    def condition_count(self, conditions: Mapping[str, str]) -> int:
        """Number of records matching the conditions (any class).

        This is the denominator of equation (1).
        """
        codes = self._codes_for(conditions)
        return int(self._counts[codes].sum())

    def total(self) -> int:
        """Total number of records the cube was built from."""
        return int(self._counts.sum())

    def class_totals(self) -> np.ndarray:
        """Record count per class (roll-up over all condition axes)."""
        axes = tuple(range(len(self._attributes)))
        return self._counts.sum(axis=axes) if axes else self._counts.copy()

    # ------------------------------------------------------------------
    # Rule measures (paper eq. 1)
    # ------------------------------------------------------------------

    def support(
        self, conditions: Mapping[str, str], class_label: str
    ) -> float:
        """Rule support = cell count / total records."""
        total = self.total()
        if total == 0:
            return 0.0
        return self.cell_count(conditions, class_label) / total

    def confidence(
        self, conditions: Mapping[str, str], class_label: str
    ) -> float:
        """Rule confidence per equation (1).

        Returns 0.0 for empty condition cells (no matching records),
        matching the paper's convention that an unsupported rule has
        confidence 0 (Fig. 1 example).
        """
        denom = self.condition_count(conditions)
        if denom == 0:
            return 0.0
        return self.cell_count(conditions, class_label) / denom

    def confidences(self) -> np.ndarray:
        """Confidence of every cell, vectorised.

        Shape matches :attr:`counts`; cells whose condition count is
        zero get confidence 0.
        """
        denom = self._counts.sum(axis=-1, keepdims=True)
        out = np.zeros(self._counts.shape, dtype=np.float64)
        np.divide(self._counts, denom, out=out, where=denom > 0)
        return out

    def supports(self) -> np.ndarray:
        """Support of every cell, vectorised."""
        total = self.total()
        if total == 0:
            return np.zeros(self._counts.shape, dtype=np.float64)
        return self._counts / total

    # ------------------------------------------------------------------
    # Rule materialisation
    # ------------------------------------------------------------------

    def rules(
        self, min_support_count: int = 0, min_confidence: float = 0.0
    ) -> Iterator[ClassAssociationRule]:
        """Materialise cells as :class:`ClassAssociationRule` objects.

        With the default thresholds every cell — including empty ones —
        becomes a rule, exactly as the paper requires ("we need to set
        both the minimum support and minimum confidence in rule mining
        to 0").
        """
        total = self.total()
        conf = self.confidences()
        it = np.ndindex(*self._counts.shape)
        for idx in it:
            count = int(self._counts[idx])
            confidence = float(conf[idx])
            if count < min_support_count or confidence < min_confidence:
                continue
            conditions = tuple(
                Condition(attr.name, attr.value_of(code))
                for attr, code in zip(self._attributes, idx[:-1])
            )
            yield ClassAssociationRule(
                conditions=conditions,
                class_label=self._class_attribute.value_of(idx[-1]),
                support_count=count,
                support=count / total if total else 0.0,
                confidence=confidence,
            )

    def rule(
        self, conditions: Mapping[str, str], class_label: str
    ) -> ClassAssociationRule:
        """Materialise a single cell as a rule object."""
        count = self.cell_count(conditions, class_label)
        total = self.total()
        return ClassAssociationRule(
            conditions=tuple(
                Condition(name, value)
                for name, value in sorted(conditions.items())
            ),
            class_label=class_label,
            support_count=count,
            support=count / total if total else 0.0,
            confidence=self.confidence(conditions, class_label),
        )

    # ------------------------------------------------------------------

    def merge(self, other: "RuleCube") -> "RuleCube":
        """Add another cube's counts cell-by-cell.

        Rule cubes are pure count tensors, so absorbing a new batch of
        records (the paper's data arrives monthly) is tensor addition —
        no rescan of the old data.  Both cubes must have identical
        structure (same attributes, same domains, same class).
        """
        if (
            self._attributes != other._attributes
            or self._class_attribute != other._class_attribute
        ):
            raise CubeError(
                "cannot merge cubes with different structure"
            )
        return RuleCube(
            self._attributes,
            self._class_attribute,
            self._counts + other._counts,
        )

    def __add__(self, other: "RuleCube") -> "RuleCube":
        if not isinstance(other, RuleCube):
            return NotImplemented
        return self.merge(other)

    def transpose(self, names: Sequence[str]) -> "RuleCube":
        """Reorder the condition axes to the given name order."""
        if sorted(names) != sorted(self.names):
            raise CubeError(
                f"transpose order {tuple(names)} must be a permutation "
                f"of {self.names}"
            )
        perm = [self.axis_of(n) for n in names] + [len(self._attributes)]
        counts = np.transpose(self._counts, perm)
        attrs = [self.attribute(n) for n in names]
        return RuleCube(attrs, self._class_attribute, counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RuleCube):
            return NotImplemented
        return (
            self._attributes == other._attributes
            and self._class_attribute == other._class_attribute
            and np.array_equal(self._counts, other._counts)
        )

    def __hash__(self) -> int:  # pragma: no cover - cubes are not hashed
        raise TypeError("RuleCube objects are unhashable")

    def __repr__(self) -> str:
        dims = " x ".join(
            f"{a.name}({a.arity})" for a in self._attributes
        )
        cls = f"{self._class_attribute.name}({self._class_attribute.arity})"
        dims = f"{dims} x {cls}" if dims else cls
        return f"RuleCube({dims}, {self.total()} records)"

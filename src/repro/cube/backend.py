"""Pluggable counting backends: where cube cells actually come from.

The paper's deployment counted rule cubes over ~200 GB of call logs
per month (Section V.C); this repo's original counting path is
RAM-bound — :class:`~repro.dataset.table.Dataset` holds every column
in memory and :class:`~repro.cube.builder.PairCubeBuilder` adds three
full-length work arrays per attribute on top.  This module introduces
a seam between the :class:`~repro.cube.store.CubeStore` (snapshots,
caching, singleflight, absorb) and the machinery that turns rows into
count tensors, with three interchangeable, bit-exact implementations:

:class:`InMemoryBackend`
    The existing in-RAM path behind the backend interface: rows live
    in an :class:`~repro.dataset.table.AppendBuffer`, sweeps run
    through :class:`~repro.cube.builder.PairCubeBuilder`.

:class:`SpillBackend`
    A columnar on-disk *code spill*: one little-endian binary file per
    attribute in the smallest signed integer dtype that holds the
    attribute's codes plus an overflow code (``arity``), described by
    a JSON manifest.  Ingest appends to the column files in place
    (positioned writes; the manifest's row count is only advanced
    afterwards, so a torn append is invisible).  Sweeps are
    **chunk-major**: the scanner streams ~1–4 M-row chunks through
    ``np.memmap`` windows and, per chunk, accumulates the mixed-radix
    ``bincount`` for *every* requested cube while the chunk's columns
    are cache-hot — one sequential pass over the data per sweep
    instead of one pass per cube, with peak memory bounded by the
    chunk size rather than the row count (see DESIGN.md §6j).

:class:`SqliteBackend`
    Counts pushed down to stdlib ``sqlite3`` as
    ``GROUP BY attr_i, attr_j, class`` — for data that already lives
    in a relational store (SHARQ's setting), the database's own
    executor does the scan and only the non-zero cells cross the
    boundary.

All three produce counts **bit-identical** to
:func:`~repro.cube.builder.build_cube` (asserted cube-by-cube in the
50-seed differential): for the spill scanner this holds because each
chunk's widened histogram uses the same overflow-bin redirection as
``PairCubeBuilder`` and integer addition over chunks is exact.

Every scan passes through the declared fault site ``backend.scan``,
so chaos runs can wound the storage layer underneath a store whose
snapshot machinery is perfectly healthy.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..dataset.schema import Attribute, Schema
from ..dataset.table import AppendBuffer, Dataset
from ..testing.sites import SITE_BACKEND_SCAN, trip
from .builder import PairCubeBuilder, minimal_code_dtype
from .rulecube import CubeError, RuleCube

__all__ = [
    "CountingBackend",
    "InMemoryBackend",
    "SpillBackend",
    "SqliteBackend",
    "BackendDataset",
    "minimal_code_dtype",
]

PathLike = Union[str, Path]

#: Default streaming chunk for the spill scanner (rows per window).
#: Large enough that the per-chunk numpy fixed costs vanish, small
#: enough that the combine scratch and the per-attribute tail arrays
#: (a handful of int64 work arrays of this length, ~1 MiB each here)
#: stay cache-resident — benchmarks show the sweep is *faster* at
#: 128 Ki rows than at 1 Mi because the head+tail+bincount inner loop
#: stops thrashing last-level cache (see bench_backend.py).
DEFAULT_CHUNK_ROWS = 1 << 17


class BackendDataset:
    """The slice of the ``Dataset`` API out-of-core stores expose.

    A spill- or sqlite-backed store holds no rows in memory, but the
    comparator needs ``.schema`` and the service layer ``.n_rows``
    (mirroring the sharded store's facade).  Anything that needs the
    raw codes must go through the backend's scan.
    """

    __slots__ = ("schema", "n_rows")

    def __init__(self, schema: Schema, n_rows: int) -> None:
        self.schema = schema
        self.n_rows = int(n_rows)

    def __len__(self) -> int:
        return self.n_rows

    def column(self, name: str) -> np.ndarray:
        raise CubeError(
            f"column {name!r} is not resident: this store's rows live "
            "in an out-of-core counting backend; read cubes, not raw "
            "columns"
        )


def _validate_backend_schema(schema: Schema) -> None:
    """Out-of-core backends store coded columns only."""
    for attr in schema:
        if not attr.is_categorical:
            raise CubeError(
                f"attribute {attr.name!r} is continuous; out-of-core "
                "backends hold coded categorical columns — discretise "
                "the data set first"
            )


def _schema_to_meta(schema: Schema) -> Dict[str, object]:
    domains = {attr.name: list(attr.values) for attr in schema}
    return {
        "class_attribute": schema.class_name,
        "domains": domains,
    }


def _schema_from_meta(meta: Dict[str, object]) -> Schema:
    domains = meta["domains"]
    attrs = [
        Attribute(name, values=values)
        for name, values in domains.items()  # type: ignore[union-attr]
    ]
    return Schema(attrs, str(meta["class_attribute"]))


def _zero_cube(schema: Schema, key: Tuple[str, ...]) -> RuleCube:
    class_attr = schema.class_attribute
    attrs = [schema[name] for name in key]
    dims = tuple(a.arity for a in attrs) + (class_attr.arity,)
    return RuleCube(attrs, class_attr, np.zeros(dims, dtype=np.int64))


class CountingBackend:
    """Interface between the cube store and its row storage.

    A backend owns the rows and answers two questions: *how many rows
    are durable* (``n_rows``) and *what are the counts of cube K over
    the first N of them* (``count`` / ``sweep``).  The ``end_row``
    bound is what keeps out-of-core reads snapshot-consistent: the
    store's immutable snapshots cannot pin spilled rows the way they
    pin an ``AppendBuffer`` prefix view, so every read is bounded by
    the row count frozen in the snapshot it serves — appends only ever
    write beyond any published bound.

    ``count(key)`` must equal :func:`build_cube` bit-for-bit over the
    same rows; ``sweep(keys)`` must equal ``[count(k) for k in keys]``
    (implementations are free to answer it in one pass — that freedom
    is the point of the seam).
    """

    #: Human-readable backend discriminator for /cubes and logs.
    kind = "abstract"

    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    def n_rows(self) -> int:
        """Durable row count (appends move it forward, never back)."""
        raise NotImplementedError

    def dataset_view(self, end_row: Optional[int] = None) -> object:
        """A dataset-like object (``schema``/``n_rows``) for snapshots."""
        raise NotImplementedError

    def count(
        self, key: Sequence[str], end_row: Optional[int] = None
    ) -> RuleCube:
        """The cube over ``key`` (+ class) from rows ``[0, end_row)``."""
        return self.sweep([key], end_row=end_row)[0]

    def sweep(
        self,
        keys: Sequence[Sequence[str]],
        end_row: Optional[int] = None,
    ) -> List[RuleCube]:
        """One cube per key, all counted from the same row prefix."""
        raise NotImplementedError

    def append(
        self, batch: Dataset, wal_seq: Optional[int] = None
    ) -> object:
        """Durably add ``batch``'s rows; returns the new dataset view.

        ``wal_seq`` stamps the highest write-ahead-log sequence number
        this backend's rows now contain, so a restart can hand WAL
        replay a ``start_after`` that skips records the durable spill
        already holds (the archive's ``wal_seq`` handoff, applied to
        rows instead of cubes).  ``None`` leaves the stamp unchanged.
        """
        raise NotImplementedError

    def wal_seq(self) -> int:
        """Highest WAL sequence number reflected in the stored rows."""
        return 0

    def describe(self) -> Dict[str, object]:
        """Backend block for ``describe_stores`` / ``GET /cubes``."""
        return {"kind": self.kind, "rows": self.n_rows()}

    def bind_metrics(self, metrics: object, store_name: str) -> None:
        """Attach a metrics panel (duck-typed; see ServiceMetrics)."""
        self._metrics = metrics
        self._metrics_store = store_name

    def close(self) -> None:
        """Release file handles / connections (idempotent)."""

    # -- shared plumbing ------------------------------------------------

    _metrics: Optional[object] = None
    _metrics_store: str = ""

    def _validate_keys(
        self, keys: Sequence[Sequence[str]]
    ) -> List[Tuple[str, ...]]:
        schema = self.schema
        out: List[Tuple[str, ...]] = []
        for key in keys:
            key = tuple(key)
            for name in key:
                attr = schema[name]  # raises on unknown names
                if name == schema.class_name:
                    raise CubeError(
                        "the class attribute is always the final cube "
                        "axis; do not list it as a condition attribute"
                    )
                if not attr.is_categorical:
                    raise CubeError(
                        f"cube attribute {name!r} is continuous; "
                        "discretise first"
                    )
            if len(set(key)) != len(key):
                raise CubeError(f"duplicate attributes: {key}")
            out.append(key)
        return out

    def _bounded(self, end_row: Optional[int]) -> int:
        rows = self.n_rows()
        if end_row is None:
            return rows
        if end_row < 0:
            raise CubeError("end_row must be non-negative")
        return min(int(end_row), rows)

    def _observe_scan(self, started: float, rows_scanned: int) -> None:
        metrics = self._metrics
        if metrics is None:
            return
        metrics.backend_scan_seconds.observe(  # type: ignore[attr-defined]
            time.perf_counter() - started,
            store=self._metrics_store,
            backend=self.kind,
        )
        if rows_scanned:
            metrics.backend_rows_scanned.inc(  # type: ignore[attr-defined]
                rows_scanned,
                store=self._metrics_store,
                backend=self.kind,
            )


class InMemoryBackend(CountingBackend):
    """The classic in-RAM path, behind the backend seam.

    Rows live in an :class:`AppendBuffer`; a sweep builds every cube
    through one shared :class:`PairCubeBuilder` over the bounded
    prefix, so the per-attribute code prep is paid once per sweep,
    exactly like the store's parallel precompute path.
    """

    kind = "memory"

    def __init__(self, dataset: Dataset) -> None:
        self._buffer = AppendBuffer(dataset)

    @property
    def schema(self) -> Schema:
        return self._buffer.schema

    def n_rows(self) -> int:
        return len(self._buffer)

    def dataset_view(self, end_row: Optional[int] = None) -> Dataset:
        dataset = self._buffer.dataset
        if end_row is None or end_row >= dataset.n_rows:
            return dataset
        return self._prefix(end_row)

    def _prefix(self, rows: int) -> Dataset:
        dataset = self._buffer.dataset
        if rows >= dataset.n_rows:
            return dataset
        columns: Dict[str, np.ndarray] = {}
        for attr in dataset.schema:
            view = dataset.column(attr.name)[:rows]
            view.setflags(write=False)
            columns[attr.name] = view
        return Dataset._trusted(dataset.schema, columns, rows)

    def sweep(
        self,
        keys: Sequence[Sequence[str]],
        end_row: Optional[int] = None,
    ) -> List[RuleCube]:
        canonical = self._validate_keys(keys)
        rows = self._bounded(end_row)
        trip(
            SITE_BACKEND_SCAN,
            backend=self.kind,
            cubes=len(canonical),
            rows=rows,
        )
        started = time.perf_counter()
        prefix = self._prefix(rows)
        names = sorted(
            {name for key in canonical for name in key}
        )
        builder = PairCubeBuilder(prefix, names)
        cubes = builder.build_many(canonical)
        self._observe_scan(started, rows)
        return cubes

    def append(
        self, batch: Dataset, wal_seq: Optional[int] = None
    ) -> Dataset:
        return self._buffer.append(batch)


class SpillBackend(CountingBackend):
    """Columnar on-disk code spill with a chunk-major streaming scanner.

    Layout (one directory)::

        manifest.json   rows, per-column dtypes, append segments,
                        chunk_rows, the coded schema, wal_seq
        col_<i>.bin     raw little-endian codes for schema column i,
                        in the minimal signed dtype holding
                        [-1, arity] (the +1 leaves room for the
                        overflow code the scanner redirects invalid
                        rows to, so chunks load without widening)

    Appends are positioned writes at ``rows * itemsize`` — they
    overwrite any orphan bytes a previously torn append left — and the
    manifest is replaced atomically *after* the columns land, so the
    durable row count never includes a partial batch and concurrent
    bounded readers never see rows move under them.
    """

    kind = "spill"

    MANIFEST = "manifest.json"

    def __init__(
        self,
        directory: PathLike,
        schema: Schema,
        rows: int,
        segments: List[int],
        chunk_rows: int,
        wal_seq: int = 0,
    ) -> None:
        if chunk_rows < 1:
            raise CubeError("chunk_rows must be positive")
        _validate_backend_schema(schema)
        self._dir = Path(directory)
        self._schema = schema
        self._rows = int(rows)
        self._segments = list(segments)
        self._chunk_rows = int(chunk_rows)
        self._wal_seq = int(wal_seq)
        self._names = list(schema.names)
        self._dtypes: Dict[str, np.dtype] = {
            attr.name: minimal_code_dtype(attr.arity)
            for attr in schema
        }
        self._paths: Dict[str, Path] = {
            name: self._dir / f"col_{i:03d}.bin"
            for i, name in enumerate(self._names)
        }
        # Serialises appends and manifest writes; scans are lock-free
        # (they read a frozen row bound over append-only files).
        self._write_lock = threading.Lock()

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: PathLike,
        schema: Schema,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> "SpillBackend":
        """Initialise an empty spill directory for ``schema``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if (directory / cls.MANIFEST).exists():
            raise CubeError(
                f"{directory} already holds a spill; open() it instead"
            )
        backend = cls(directory, schema, 0, [], chunk_rows)
        for path in backend._paths.values():
            path.touch()
        backend._write_manifest()
        return backend

    @classmethod
    def from_dataset(
        cls,
        directory: PathLike,
        dataset: Dataset,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> "SpillBackend":
        """Create a spill and encode ``dataset`` into it as one segment."""
        backend = cls.create(directory, dataset.schema, chunk_rows)
        backend.append(dataset)
        return backend

    @classmethod
    def open(cls, directory: PathLike) -> "SpillBackend":
        """Open an existing spill directory (validates the manifest)."""
        directory = Path(directory)
        manifest_path = directory / cls.MANIFEST
        try:
            with manifest_path.open("r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise CubeError(
                f"{directory} is not a spill directory (no manifest)"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise CubeError(
                f"unreadable spill manifest at {manifest_path}: {exc}"
            ) from exc
        if manifest.get("format") != 1:
            raise CubeError(
                f"unsupported spill manifest format "
                f"{manifest.get('format')!r}"
            )
        schema = _schema_from_meta(manifest)
        backend = cls(
            directory,
            schema,
            int(manifest["rows"]),
            [int(s) for s in manifest["segments"]],
            int(manifest["chunk_rows"]),
            wal_seq=int(manifest.get("wal_seq", 0)),
        )
        for name, dtype_name in manifest["dtypes"].items():
            if np.dtype(dtype_name) != backend._dtypes[name]:
                raise CubeError(
                    f"spill column {name!r} dtype {dtype_name} does "
                    f"not match the schema-derived "
                    f"{backend._dtypes[name].name}"
                )
        for name, path in backend._paths.items():
            expected = backend._rows * backend._dtypes[name].itemsize
            if not path.exists() or path.stat().st_size < expected:
                raise CubeError(
                    f"spill column file {path.name} is shorter than "
                    f"the manifest's {backend._rows} rows"
                )
        return backend

    def _write_manifest(self) -> None:
        manifest = dict(_schema_to_meta(self._schema))
        manifest.update(
            {
                "format": 1,
                "rows": self._rows,
                "segments": self._segments,
                "chunk_rows": self._chunk_rows,
                "dtypes": {
                    name: dtype.name
                    for name, dtype in self._dtypes.items()
                },
                "wal_seq": self._wal_seq,
            }
        )
        tmp = self._dir / (self.MANIFEST + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._dir / self.MANIFEST)

    # -- backend interface ----------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def chunk_rows(self) -> int:
        return self._chunk_rows

    def n_rows(self) -> int:
        return self._rows

    def wal_seq(self) -> int:
        return self._wal_seq

    def dataset_view(
        self, end_row: Optional[int] = None
    ) -> BackendDataset:
        return BackendDataset(self._schema, self._bounded(end_row))

    def spill_bytes(self) -> int:
        return self._rows * sum(
            dtype.itemsize for dtype in self._dtypes.values()
        )

    def describe(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "rows": self._rows,
            "spill_bytes": self.spill_bytes(),
            "segments": len(self._segments),
            "chunk_rows": self._chunk_rows,
            "path": str(self._dir),
        }

    def append(
        self, batch: Dataset, wal_seq: Optional[int] = None
    ) -> BackendDataset:
        if batch.schema != self._schema:
            raise CubeError(
                "batch schema does not match the spill's schema"
            )
        with self._write_lock:
            m = batch.n_rows
            if m:
                for name in self._names:
                    dtype = self._dtypes[name]
                    codes = np.ascontiguousarray(
                        batch.column(name).astype(dtype)
                    )
                    with self._paths[name].open("r+b") as handle:
                        handle.seek(self._rows * dtype.itemsize)
                        handle.write(codes.tobytes())
                        handle.flush()
                        os.fsync(handle.fileno())
                self._rows += m
                self._segments.append(m)
            if wal_seq is not None:
                self._wal_seq = max(self._wal_seq, int(wal_seq))
            if m or wal_seq is not None:
                self._write_manifest()
            return BackendDataset(self._schema, self._rows)

    def _load(self, name: str, start: int, stop: int) -> np.ndarray:
        """One column's codes for rows ``[start, stop)`` (memmapped).

        The mapping is released when the returned array is collected
        at the end of the chunk iteration, so the scanner's resident
        set is one window per touched column, not the whole file.
        """
        dtype = self._dtypes[name]
        return np.memmap(
            self._paths[name],
            dtype=dtype,
            mode="r",
            offset=start * dtype.itemsize,
            shape=(stop - start,),
        )

    def sweep(
        self,
        keys: Sequence[Sequence[str]],
        end_row: Optional[int] = None,
    ) -> List[RuleCube]:
        canonical = self._validate_keys(keys)
        rows = self._bounded(end_row)
        trip(
            SITE_BACKEND_SCAN,
            backend=self.kind,
            cubes=len(canonical),
            rows=rows,
        )
        started = time.perf_counter()
        cubes = self._scan(canonical, rows)
        self._observe_scan(started, rows if canonical else 0)
        return cubes

    def _scan(
        self, keys: List[Tuple[str, ...]], rows: int
    ) -> List[RuleCube]:
        """Chunk-major streaming count of every requested cube.

        Per chunk, the class column's validity/safe codes are computed
        once; each participating attribute gets its overflow-redirected
        ``safe`` codes (native dtype) and pre-multiplied int64 ``tail``
        once; each *leading* attribute of a pair gets its int64 ``head``
        once.  Every requested cube is then one ``bincount`` into a
        widened per-key accumulator — the same overflow-bin algebra as
        :class:`PairCubeBuilder`, applied per chunk and summed exactly.
        """
        schema = self._schema
        class_attr = schema.class_attribute
        n_classes = class_attr.arity
        if not keys:
            return []
        if rows == 0:
            return [_zero_cube(schema, key) for key in keys]

        short_keys = [k for k in keys if len(k) <= 2]
        long_keys = [k for k in keys if len(k) > 2]
        pair_names = sorted({n for k in short_keys for n in k})
        long_names = sorted({n for k in long_keys for n in k})
        max_arity = max(
            (schema[n].arity for n in pair_names), default=0
        )
        radix = (max_arity + 1) * n_classes

        acc: Dict[Tuple[str, ...], np.ndarray] = {}
        for key in keys:
            if len(key) == 0:
                size = n_classes
            elif len(key) == 1:
                size = (schema[key[0]].arity + 1) * n_classes
            elif len(key) == 2:
                size = (schema[key[0]].arity + 1) * radix
            else:
                size = n_classes
                for name in key:
                    size *= schema[name].arity
            acc[key] = np.zeros(size, dtype=np.int64)

        pairs_by_lead: Dict[str, List[Tuple[str, ...]]] = {}
        for key in short_keys:
            if len(key) == 2:
                pairs_by_lead.setdefault(key[0], []).append(key)

        # Reused int64 scratch for the head+tail combine, so the pair
        # loop allocates nothing proportional to the chunk size.
        flat_scratch = np.empty(
            min(self._chunk_rows, rows), dtype=np.int64
        )

        for start in range(0, rows, self._chunk_rows):
            stop = min(start + self._chunk_rows, rows)
            n = stop - start
            class_codes = np.asarray(
                self._load(schema.class_name, start, stop)
            )
            class_valid = class_codes >= 0
            class_safe = class_codes.astype(np.int64)
            class_safe[~class_valid] = 0

            safes: Dict[str, np.ndarray] = {}
            tails: Dict[str, np.ndarray] = {}
            for name in pair_names:
                arity = schema[name].arity
                col = np.asarray(self._load(name, start, stop))
                safe = col.copy()
                safe[(col < 0) | ~class_valid] = arity
                safes[name] = safe
                tails[name] = safe.astype(np.int64) * n_classes + class_safe

            for key in short_keys:
                if len(key) == 0:
                    acc[key] += np.bincount(
                        class_codes[class_valid].astype(np.int64),
                        minlength=n_classes,
                    )
                elif len(key) == 1:
                    acc[key] += np.bincount(
                        tails[key[0]], minlength=acc[key].size
                    )
            for lead, lead_keys in pairs_by_lead.items():
                head = safes[lead].astype(np.int64)
                head *= radix
                for key in lead_keys:
                    flat = flat_scratch[:n]
                    np.add(head, tails[key[1]], out=flat)
                    acc[key] += np.bincount(
                        flat, minlength=acc[key].size
                    )

            if long_keys:
                long_cols = {
                    name: np.asarray(self._load(name, start, stop))
                    for name in long_names
                }
                for key in long_keys:
                    mask = class_valid.copy()
                    for name in key:
                        mask &= long_cols[name] >= 0
                    flat = np.zeros(n, dtype=np.int64)
                    for name in key:
                        flat *= schema[name].arity
                        flat += long_cols[name]
                    flat *= n_classes
                    flat += class_safe
                    acc[key] += np.bincount(
                        flat[mask], minlength=acc[key].size
                    )

        out: List[RuleCube] = []
        for key in keys:
            attrs = [schema[name] for name in key]
            class_dim = n_classes
            counts = acc[key]
            if len(key) == 0:
                shaped = counts
            elif len(key) == 1:
                shaped = np.ascontiguousarray(
                    counts.reshape(-1, class_dim)[: attrs[0].arity]
                )
            elif len(key) == 2:
                shaped = np.ascontiguousarray(
                    counts.reshape(
                        attrs[0].arity + 1, -1, class_dim
                    )[: attrs[0].arity, : attrs[1].arity]
                )
            else:
                dims = tuple(a.arity for a in attrs) + (class_dim,)
                shaped = counts.reshape(dims)
            out.append(RuleCube(attrs, class_attr, shaped))
        return out


class SqliteBackend(CountingBackend):
    """Counts pushed down to a stdlib ``sqlite3`` database.

    Rows live in one wide integer table; a cube read becomes::

        SELECT "a", "b", "<class>", COUNT(*) FROM data
        WHERE rid < ? AND "a" >= 0 AND "b" >= 0 AND "<class>" >= 0
        GROUP BY "a", "b", "<class>"

    so only non-zero cells cross the SQL boundary and the database's
    executor owns the scan (the SHARQ setting: association-rule
    workloads over data already resident in a relational store).  One
    pass per cube — cube-major by construction, which is exactly the
    scan order the chunk-major spill scanner exists to beat on bulk
    sweeps (DESIGN.md §6j); its niche is data already in SQL.
    """

    kind = "sqlite"

    def __init__(self, path: PathLike, schema: Schema) -> None:
        _validate_backend_schema(schema)
        for name in schema.names:
            if '"' in name:
                raise CubeError(
                    f"attribute name {name!r} contains a double "
                    "quote; sqlite identifiers cannot be escaped "
                    "safely — rename the attribute"
                )
        self._path = Path(path)
        self._schema = schema
        # One shared connection guarded by a lock: the store's read
        # paths may scan from several threads, and sqlite objects must
        # not be used concurrently from threads they were not made on.
        self._conn = sqlite3.connect(
            str(self._path), check_same_thread=False
        )
        self._lock = threading.Lock()
        self._rows = 0
        self._segments = 0
        self._wal_seq = 0

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls, path: PathLike, schema: Schema
    ) -> "SqliteBackend":
        path = Path(path)
        if path.exists() and path.stat().st_size > 0:
            raise CubeError(
                f"{path} already exists; open() it instead"
            )
        backend = cls(path, schema)
        cols = ", ".join(
            f'"{name}" INTEGER NOT NULL' for name in schema.names
        )
        with backend._lock:
            cur = backend._conn.cursor()
            cur.execute(
                "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            cur.execute(
                f"CREATE TABLE data (rid INTEGER PRIMARY KEY, {cols})"
            )
            cur.execute(
                "INSERT INTO meta VALUES ('schema', ?)",
                (json.dumps(_schema_to_meta(schema)),),
            )
            cur.execute("INSERT INTO meta VALUES ('rows', '0')")
            cur.execute("INSERT INTO meta VALUES ('segments', '0')")
            cur.execute("INSERT INTO meta VALUES ('wal_seq', '0')")
            backend._conn.commit()
        return backend

    @classmethod
    def from_dataset(
        cls, path: PathLike, dataset: Dataset
    ) -> "SqliteBackend":
        backend = cls.create(path, dataset.schema)
        backend.append(dataset)
        return backend

    @classmethod
    def open(cls, path: PathLike) -> "SqliteBackend":
        path = Path(path)
        if not path.exists():
            raise CubeError(f"{path} does not exist")
        conn = sqlite3.connect(str(path))
        try:
            try:
                rows = conn.execute(
                    "SELECT key, value FROM meta"
                ).fetchall()
            except sqlite3.Error as exc:
                raise CubeError(
                    f"{path} is not a cube backend database: {exc}"
                ) from exc
        finally:
            conn.close()
        meta = dict(rows)
        schema = _schema_from_meta(json.loads(meta["schema"]))
        backend = cls(path, schema)
        backend._rows = int(meta["rows"])
        backend._segments = int(meta.get("segments", "0"))
        backend._wal_seq = int(meta.get("wal_seq", "0"))
        return backend

    # -- backend interface ----------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def path(self) -> Path:
        return self._path

    def n_rows(self) -> int:
        return self._rows

    def wal_seq(self) -> int:
        return self._wal_seq

    def dataset_view(
        self, end_row: Optional[int] = None
    ) -> BackendDataset:
        return BackendDataset(self._schema, self._bounded(end_row))

    def describe(self) -> Dict[str, object]:
        try:
            db_bytes = self._path.stat().st_size
        except OSError:
            db_bytes = 0
        return {
            "kind": self.kind,
            "rows": self._rows,
            "spill_bytes": db_bytes,
            "segments": self._segments,
            "path": str(self._path),
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def append(
        self, batch: Dataset, wal_seq: Optional[int] = None
    ) -> BackendDataset:
        if batch.schema != self._schema:
            raise CubeError(
                "batch schema does not match the database's schema"
            )
        m = batch.n_rows
        with self._lock:
            new_rows = self._rows + m
            new_segments = self._segments + (1 if m else 0)
            new_wal_seq = self._wal_seq
            if wal_seq is not None:
                new_wal_seq = max(new_wal_seq, int(wal_seq))
            cur = self._conn.cursor()
            try:
                if m:
                    names = list(self._schema.names)
                    cols = ", ".join(f'"{n}"' for n in names)
                    marks = ", ".join("?" for _ in range(len(names) + 1))
                    rids = range(self._rows, new_rows)
                    columns = [
                        batch.column(n).tolist() for n in names
                    ]
                    cur.executemany(
                        f"INSERT INTO data (rid, {cols}) "
                        f"VALUES ({marks})",
                        zip(rids, *columns),
                    )
                cur.execute(
                    "UPDATE meta SET value = ? WHERE key = 'rows'",
                    (str(new_rows),),
                )
                cur.execute(
                    "UPDATE meta SET value = ? WHERE key = 'segments'",
                    (str(new_segments),),
                )
                cur.execute(
                    "UPDATE meta SET value = ? WHERE key = 'wal_seq'",
                    (str(new_wal_seq),),
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
            self._rows = new_rows
            self._segments = new_segments
            self._wal_seq = new_wal_seq
            return BackendDataset(self._schema, self._rows)

    def sweep(
        self,
        keys: Sequence[Sequence[str]],
        end_row: Optional[int] = None,
    ) -> List[RuleCube]:
        canonical = self._validate_keys(keys)
        rows = self._bounded(end_row)
        trip(
            SITE_BACKEND_SCAN,
            backend=self.kind,
            cubes=len(canonical),
            rows=rows,
        )
        started = time.perf_counter()
        cubes = [self._group_by(key, rows) for key in canonical]
        # One full pass per cube: the honest cost of cube-major SQL.
        self._observe_scan(started, rows * len(canonical))
        return cubes

    def _group_by(self, key: Tuple[str, ...], rows: int) -> RuleCube:
        schema = self._schema
        class_attr = schema.class_attribute
        attrs = [schema[name] for name in key]
        dims = tuple(a.arity for a in attrs) + (class_attr.arity,)
        counts = np.zeros(dims, dtype=np.int64)
        if rows:
            names = list(key) + [schema.class_name]
            cols = ", ".join(f'"{n}"' for n in names)
            valid = " AND ".join(f'"{n}" >= 0' for n in names)
            sql = (
                f"SELECT {cols}, COUNT(*) FROM data "
                f"WHERE rid < ? AND {valid} GROUP BY {cols}"
            )
            with self._lock:
                fetched = self._conn.execute(sql, (rows,)).fetchall()
            for row in fetched:
                counts[tuple(row[:-1])] = row[-1]
        return RuleCube(attrs, class_attr, counts)

"""Cube store: the system's materialised cube layer.

"In our current implementation, we store all 3-dimensional rule cubes.
For each cube, one of the dimensions is always the class attribute"
(Section III.B).  The store offers exactly that contract:

* :meth:`CubeStore.precompute` materialises every pair cube up front
  (the off-line, "in the evening" phase);
* :meth:`CubeStore.cube` returns any requested cube, serving from the
  cache when possible (a pair cube requested in either attribute order
  is served by transposing the cached one) and counting lazily
  otherwise;
* once cubes exist, downstream consumers (the comparator, the GI miner,
  the visualizer) never touch the raw records — which is why the
  comparison time in Fig. 9 is independent of the data-set size.

Concurrency model — copy-on-write snapshots
-------------------------------------------

The store's entire visible state lives in one immutable
:class:`_Snapshot` object ``{cache, dataset, generation}``; readers
load ``self._snapshot`` (one atomic reference read under the GIL) and
never take a lock on the hot path.  :meth:`absorb` builds every delta
cube *outside* any lock against the snapshot it started from, then
publishes a brand-new snapshot in a single pointer swap — the paper's
"monthly re-generation" collapses to a reader-invisible instant.
Writers serialise on a dedicated write lock; the internal ``_lock``
only guards cache-dict inserts, the singleflight latch table and the
swap itself, and is never held across cube counting.

Lazy builds stay singleflight: the first requester of a missing cube
becomes its builder, concurrent requesters of the same key wait on its
latch, and readers of other (cached) cubes are never blocked by
someone else's slow build.  A build that raced an :meth:`absorb` is
returned to its requester (it is correct for the snapshot that
requester saw) but not cached — snapshot identity, not a counter, is
the staleness test.

Multi-read consistency: a single cube read is always self-consistent,
but a *sequence* of reads (the comparator touches several cubes plus
the class distribution per comparison) could straddle a swap.
:meth:`pinned` pins the calling thread to one snapshot for a ``with``
block, so the whole sequence sees one frozen world — this replaces the
readers–writer lock the service engine used to wrap around every
compute.
"""

from __future__ import annotations

import threading
from concurrent.futures import Executor, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..dataset.schema import MISSING
from ..dataset.table import AppendBuffer, Dataset
from ..service.tracing import span
from ..testing.sites import SITE_STORE_ABSORB, SITE_STORE_CUBE, trip
from .builder import PairCubeBuilder, build_cube
from .rulecube import CubeError, RuleCube

__all__ = ["CubeStore"]


class _Snapshot:
    """One immutable, internally consistent view of the store.

    ``cache`` maps canonical (sorted) attribute tuples to cubes counted
    from exactly ``dataset``'s rows.  The dict itself gains entries as
    lazy builds complete (always cubes counted from the same
    ``dataset``, so consistency is preserved), but existing entries are
    never mutated and the dataset/generation never change — an absorb
    publishes a *new* snapshot instead.

    ``retain`` anchors whatever external resource backs the cube
    tensors — a worker process's attached shared-memory segment, whose
    mapping must outlive every view into it.  It rides on the snapshot
    because the snapshot's lifetime *is* the views' lifetime: a pinned
    reader keeps the snapshot (and therefore the mapping) alive, and
    when the last reference to a replaced snapshot drops, the segment
    becomes closeable.  ``None`` for ordinary in-process snapshots.
    """

    __slots__ = ("cache", "dataset", "generation", "retain")

    def __init__(
        self,
        cache: Dict[Tuple[str, ...], RuleCube],
        dataset: Dataset,
        generation: int,
        retain: object = None,
    ) -> None:
        self.cache = cache
        self.dataset = dataset
        self.generation = generation
        self.retain = retain


class CubeStore:
    """Cache of rule cubes over one data set.

    Parameters
    ----------
    dataset:
        The (fully categorical) data set cubes are counted from.
    attributes:
        The condition attributes the store manages; defaults to all.
        The paper's analysts restricted the 600+ raw attributes to the
        ~200 performance-related ones — pass that subset here.
    max_cells:
        Upper bound on a single cube's cell count.  Dense cubes over
        high-arity attributes (cell ids, serial numbers) explode
        quadratically; requests beyond the bound raise
        :class:`CubeError` with a pointer to
        :func:`repro.dataset.reduce_arity` instead of silently eating
        memory.  ``None`` disables the guard.
    """

    #: Default per-cube cell budget (~80 MB of int64 counts).
    DEFAULT_MAX_CELLS = 10_000_000

    #: Cached-cube count above which :meth:`absorb` fans the delta
    #: sweep over a worker pool (below it, thread dispatch overhead
    #: beats the per-cube bincount).
    ABSORB_FAN_THRESHOLD = 32

    def __init__(
        self,
        dataset: Optional[Dataset] = None,
        attributes: Optional[Sequence[str]] = None,
        max_cells: Optional[int] = DEFAULT_MAX_CELLS,
        backend: Optional[object] = None,
    ) -> None:
        if backend is not None:
            if dataset is not None:
                raise CubeError(
                    "pass either a dataset or a counting backend, "
                    "not both (the backend owns the rows)"
                )
            dataset = backend.dataset_view()  # type: ignore[attr-defined]
            schema = backend.schema  # type: ignore[attr-defined]
        elif dataset is None:
            raise CubeError("a store needs a dataset or a backend")
        else:
            schema = dataset.schema
        if attributes is None:
            attributes = [a.name for a in schema.condition_attributes]
        else:
            for name in attributes:
                attr = schema[name]  # raises on unknown names
                if name == schema.class_name:
                    raise CubeError(
                        "the class attribute cannot be a condition "
                        "attribute of the store"
                    )
                if not attr.is_categorical:
                    raise CubeError(
                        f"store attribute {name!r} is continuous; "
                        "discretise the data set first"
                    )
        if max_cells is not None and max_cells < 1:
            raise CubeError("max_cells must be positive or None")
        self._schema = schema
        self._attributes: Tuple[str, ...] = tuple(attributes)
        self._max_cells = max_cells
        # Row ownership: a backend store's rows live in the backend
        # (possibly on disk); snapshots then carry a dataset *view*
        # (schema + frozen row count) and every count is bounded by
        # it.  A plain store keeps the classic AppendBuffer.
        self._backend = backend
        self._append = None if backend is not None else AppendBuffer(dataset)
        self._snapshot = _Snapshot({}, dataset, 0)
        # Guards cache inserts, the _building latch table and the
        # snapshot swap.  Never held across cube counting.
        self._lock = threading.RLock()
        # Serialises absorb/invalidate; readers never touch it.
        self._write_lock = threading.Lock()
        self._building: Dict[Tuple[str, ...], threading.Event] = {}
        # Per-thread pinned snapshot (see pinned()).
        self._local = threading.local()
        # Outermost active pins per generation (see retention_info()).
        self._pins: Dict[int, int] = {}
        # Optional write-ahead log (see bind_wal()).
        self._wal = None
        self._wal_shard: Optional[int] = None
        # Attach-only mode (see install_cache()): the store serves
        # externally published cubes and holds no rows, so a lazy
        # build would silently count zeros — forbid it instead.
        self._remote = False

    @classmethod
    def from_backend(
        cls,
        backend: object,
        attributes: Optional[Sequence[str]] = None,
        max_cells: Optional[int] = DEFAULT_MAX_CELLS,
    ) -> "CubeStore":
        """A store whose rows live in a counting backend.

        ``backend`` is any :class:`~repro.cube.backend.CountingBackend`
        — the in-memory one for the classic behaviour, the columnar
        spill for out-of-core data, or the sqlite push-down.  The
        store's snapshot/caching/absorb machinery is identical either
        way; only the counting pass changes.
        """
        return cls(
            attributes=attributes, max_cells=max_cells, backend=backend
        )

    @property
    def backend(self) -> Optional[object]:
        """The counting backend, or ``None`` for a plain store."""
        return self._backend

    def backend_info(self) -> Dict[str, object]:
        """Backend block for ``describe_stores`` / ``GET /cubes``."""
        if self._backend is None:
            return {
                "kind": "memory",
                "rows": self._current().dataset.n_rows,
            }
        return self._backend.describe()  # type: ignore[attr-defined]

    def bind_metrics(self, metrics: object, store_name: str) -> None:
        """Attach a metrics panel; forwarded to the backend's scans.

        Called by the engine when the store is registered; duck-typed
        so the cube layer stays importable without the service stack.
        A plain store has no backend scans to time — no-op.
        """
        if self._backend is not None:
            self._backend.bind_metrics(  # type: ignore[attr-defined]
                metrics, store_name
            )

    # ------------------------------------------------------------------
    # Snapshot access
    # ------------------------------------------------------------------

    def _current(self) -> _Snapshot:
        """The thread's pinned snapshot, or the live one."""
        pinned = getattr(self._local, "snapshot", None)
        return pinned if pinned is not None else self._snapshot

    @contextmanager
    def pinned(self) -> Iterator[_Snapshot]:
        """Pin the calling thread to one snapshot for a ``with`` block.

        Every store read on this thread inside the block — ``cube``,
        ``planes``, ``dataset``, ``generation`` — resolves against the
        same frozen snapshot, even if absorbs land concurrently.
        Nested pins keep the outermost snapshot.  Yields the snapshot
        so callers can tag results with its ``generation``.
        """
        previous = getattr(self._local, "snapshot", None)
        snapshot = previous if previous is not None else self._snapshot
        self._local.snapshot = snapshot
        if previous is None:
            self._track_pin(snapshot)
        try:
            yield snapshot
        finally:
            self._local.snapshot = previous
            if previous is None:
                self._untrack_pin(snapshot)

    def current_snapshot(self) -> _Snapshot:
        """The snapshot reads on this thread resolve against right now.

        Respects an active :meth:`pinned` block.  The returned object
        is immutable (dataset/generation never change; the cache only
        gains same-dataset entries), so it can be handed to *another*
        thread and re-pinned there with :meth:`pinned_to` — the shard
        store's scatter phase captures one snapshot per shard on the
        calling thread and pins each worker-pool read to it.
        """
        return self._current()

    @contextmanager
    def pinned_to(self, snapshot: _Snapshot) -> Iterator[_Snapshot]:
        """Pin the calling thread to an explicitly captured snapshot.

        Unlike :meth:`pinned`, which freezes whatever is current, this
        installs a snapshot captured earlier — possibly on a different
        thread via :meth:`current_snapshot`.  ``pinned()`` pins are
        per-thread (``threading.local``), so they do not propagate to
        worker-pool threads; this is the propagation mechanism.
        """
        previous = getattr(self._local, "snapshot", None)
        self._local.snapshot = snapshot
        if previous is None:
            self._track_pin(snapshot)
        try:
            yield snapshot
        finally:
            self._local.snapshot = previous
            if previous is None:
                self._untrack_pin(snapshot)

    def _track_pin(self, snapshot: _Snapshot) -> None:
        """Count an outermost pin against its snapshot's generation."""
        with self._lock:
            gen = snapshot.generation
            self._pins[gen] = self._pins.get(gen, 0) + 1

    def _untrack_pin(self, snapshot: _Snapshot) -> None:
        with self._lock:
            gen = snapshot.generation
            remaining = self._pins.get(gen, 0) - 1
            if remaining <= 0:
                self._pins.pop(gen, None)
            else:
                self._pins[gen] = remaining

    def retention_info(self) -> Dict[str, int]:
        """Snapshot-retention accounting for long-pinned readers.

        Every outermost :meth:`pinned` / :meth:`pinned_to` block keeps
        one whole :class:`_Snapshot` — and, transitively, the
        ``AppendBuffer`` prefix views its dataset wraps — alive for its
        duration.  ``pinned_generations`` counts the distinct
        generations currently held; ``stale_pinned_generations`` the
        subset older than the live snapshot, i.e. memory that only the
        pinning readers keep resident.  The engine exports this as the
        ``repro_snapshot_pinned_generations`` gauge.
        """
        with self._lock:
            pins = dict(self._pins)
            current = self._snapshot.generation
        return {
            "current_generation": current,
            "active_pins": sum(pins.values()),
            "pinned_generations": len(pins),
            "stale_pinned_generations": sum(
                1 for gen in pins if gen < current
            ),
        }

    @property
    def dataset(self) -> Dataset:
        """The backing data set (of the current snapshot)."""
        return self._current().dataset

    @property
    def generation(self) -> int:
        """Data generation: bumped once per absorbed (non-empty) batch."""
        return self._current().generation

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Condition attributes the store manages."""
        return self._attributes

    @property
    def n_cached(self) -> int:
        """Number of cubes currently materialised."""
        return len(self._current().cache)

    # ------------------------------------------------------------------
    # Budget / validation
    # ------------------------------------------------------------------

    def cube_cells(self, attributes: Sequence[str]) -> int:
        """Cell count of the (hypothetical) cube over ``attributes``."""
        cells = self._schema.n_classes
        for name in attributes:
            cells *= self._schema[name].arity
        return cells

    def _check_budget(self, attributes: Sequence[str]) -> None:
        if self._max_cells is None:
            return
        cells = self.cube_cells(attributes)
        if cells > self._max_cells:
            raise CubeError(
                f"cube over {tuple(attributes)} would have {cells} "
                f"cells (budget: {self._max_cells}); reduce the "
                "arity of high-cardinality attributes first "
                "(repro.dataset.reduce_arity) or raise max_cells"
            )

    def _validate_key(self, attributes: Sequence[str]) -> Tuple[str, ...]:
        requested = tuple(attributes)
        for name in requested:
            if name not in self._attributes:
                raise CubeError(
                    f"attribute {name!r} is not managed by this store"
                )
        if len(set(requested)) != len(requested):
            raise CubeError(f"duplicate attributes: {requested}")
        return requested

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _count_cube(
        self, snapshot: _Snapshot, canonical: Tuple[str, ...]
    ) -> RuleCube:
        """Count one cube from exactly the snapshot's rows.

        Plain store: the snapshot's dataset prefix view.  Backend
        store: the backend, bounded by the snapshot's frozen row count
        — appends only ever write beyond any published bound, so the
        read is consistent without the snapshot pinning a single row.
        """
        if self._backend is None:
            return build_cube(snapshot.dataset, canonical)
        return self._backend.count(  # type: ignore[attr-defined]
            canonical, end_row=snapshot.dataset.n_rows
        )

    def _get_or_build(
        self, snapshot: _Snapshot, canonical: Tuple[str, ...]
    ) -> RuleCube:
        """Fetch a canonical-key cube, building it *outside* the lock.

        Singleflight: the first thread to miss on a key registers a
        build latch and counts the cube; every concurrent requester of
        the same key waits on the latch instead of duplicating the
        work.  Waiters loop rather than sharing the builder's result
        directly, so a failed build surfaces its error in whichever
        thread retries, not a borrowed exception.

        If ``snapshot`` is no longer the live one (the reader is pinned
        across an absorb, or lost the race to one), the cube is counted
        privately from the snapshot's own dataset and *not* cached —
        correct for that reader, invisible to everyone else.
        """
        while True:
            cube = snapshot.cache.get(canonical)
            if cube is not None:
                return cube
            if self._remote:
                raise CubeError(
                    f"cube {canonical!r} is not in the published "
                    "snapshot and this attach-only store holds no "
                    "rows to count it from; publish it from the "
                    "owning process (precompute before serving)"
                )
            with self._lock:
                cube = snapshot.cache.get(canonical)
                if cube is not None:
                    return cube
                stale = snapshot is not self._snapshot
                if stale:
                    self._check_budget(canonical)
                else:
                    latch = self._building.get(canonical)
                    if latch is None:
                        self._check_budget(canonical)
                        latch = threading.Event()
                        self._building[canonical] = latch
                        break
            if stale:
                with span("cube.build", key=list(canonical)):
                    return self._count_cube(snapshot, canonical)
            latch.wait()
        try:
            with span("cube.build", key=list(canonical)):
                cube = self._count_cube(snapshot, canonical)
            with self._lock:
                if snapshot is self._snapshot:
                    snapshot.cache[canonical] = cube
            return cube
        finally:
            with self._lock:
                self._building.pop(canonical, None)
            latch.set()

    def cube(self, attributes: Sequence[str]) -> RuleCube:
        """The rule cube over ``attributes`` (+ class), cached.

        Cubes are cached under the sorted attribute tuple; a request in
        a different axis order is served by transposing the cached cube
        (counts are order-independent).  Hot-path callers should
        request the canonical sorted order (or use :meth:`planes`) and
        index the axis they need directly — the transpose allocates.

        Cache hits are lock-free: one snapshot-reference read plus one
        dict lookup.

        This is a declared fault site (``store.cube``): a chaos run
        can make any cube read slow or fail here, standing in for a
        sick disk or remote store (see :mod:`repro.testing`).
        """
        trip(SITE_STORE_CUBE, attributes=tuple(attributes))
        requested = self._validate_key(attributes)
        canonical = tuple(sorted(requested))
        snapshot = self._current()
        cube = snapshot.cache.get(canonical)
        if cube is None:
            cube = self._get_or_build(snapshot, canonical)
        if requested != canonical:
            cube = cube.transpose(requested)
        return cube

    def planes(
        self, keys: Sequence[Sequence[str]]
    ) -> List[RuleCube]:
        """Bulk cube read: every requested cube in one cache pass.

        Returns the cubes in **canonical (sorted) axis order**, one per
        requested key, without transposing — batch consumers (the
        comparison kernel) index the axis they need directly.  The
        whole batch resolves against one snapshot, so the returned
        cubes are mutually consistent even when absorbs land mid-call;
        cache hits take no lock at all.

        Fault-site contract: trips ``store.cube`` once per requested
        key, in request order, with the requested (pre-canonical)
        attribute tuple as context — exactly the trip sequence a loop
        of :meth:`cube` calls would produce, so chaos plans and their
        seeded PRNG streams behave identically on both paths.
        """
        with span("store.planes", cubes=len(keys)) as planes_span:
            canonicals: List[Tuple[str, ...]] = []
            for key in keys:
                trip(SITE_STORE_CUBE, attributes=tuple(key))
                requested = self._validate_key(key)
                canonicals.append(tuple(sorted(requested)))
            snapshot = self._current()
            cache = snapshot.cache
            cached = [cache.get(c) for c in canonicals]
            planes_span.annotate(
                misses=sum(1 for cube in cached if cube is None)
            )
            return [
                cube
                if cube is not None
                else self._get_or_build(snapshot, canonical)
                for canonical, cube in zip(canonicals, cached)
            ]

    def pair_cube(self, a: str, b: str) -> RuleCube:
        """Convenience for the 3-dimensional cube over ``(a, b, class)``."""
        return self.cube((a, b))

    def single_cube(self, a: str) -> RuleCube:
        """Convenience for the 2-dimensional cube over ``(a, class)``."""
        return self.cube((a,))

    def class_distribution_cube(self) -> RuleCube:
        """The 1-dimensional class-only cube.

        Routed through :meth:`cube` with the empty key, so the
        ``store.cube`` fault site and the cell budget apply to it like
        to every other cube read (it used to bypass both).
        """
        return self.cube(())

    # ------------------------------------------------------------------
    # Precompute
    # ------------------------------------------------------------------

    def _missing_keys(
        self, include_pairs: bool
    ) -> List[Tuple[str, ...]]:
        keys: List[Tuple[str, ...]] = [
            (name,) for name in self._attributes
        ]
        if include_pairs:
            for i, a in enumerate(self._attributes):
                for b in self._attributes[i + 1:]:
                    keys.append(tuple(sorted((a, b))))
        cache = self._current().cache
        return [k for k in keys if k not in cache]

    def precompute(
        self,
        include_pairs: bool = True,
        workers: Optional[int] = None,
    ) -> int:
        """Materialise all 2-D and (optionally) all 3-D cubes.

        Returns the number of cubes built.  This is the system's
        off-line generation phase benchmarked in Figs. 10 and 11.

        With ``workers=N`` the pair-cube sweep is fanned across a
        ``ThreadPoolExecutor`` whose builds share one
        :class:`~repro.cube.builder.PairCubeBuilder` — per-column
        validity masks and pre-multiplied mixed-radix codes are
        computed once per attribute instead of once per cube, and the
        store lock is only taken for the final cache inserts, so
        concurrent readers keep being served while precompute runs.
        The counts are bit-identical to the serial path's.
        """
        missing = self._missing_keys(include_pairs)
        if not missing:
            return 0
        if self._backend is not None:
            # One chunk-major sweep counts every missing cube in a
            # single pass over the rows — the whole point of the
            # backend seam; ``workers`` is irrelevant (the scan is one
            # sequential read, not a per-cube fan-out).
            snapshot = self._current()
            missing = [k for k in missing if k not in snapshot.cache]
            for key in missing:
                self._check_budget(key)
            cubes = self._backend.sweep(  # type: ignore[attr-defined]
                missing, end_row=snapshot.dataset.n_rows
            )
            built = 0
            with self._lock:
                if self._snapshot is snapshot:
                    for key, cube in zip(missing, cubes):
                        if key not in snapshot.cache:
                            snapshot.cache[key] = cube
                            built += 1
            return built
        if workers is None or workers <= 1:
            built = 0
            for key in missing:
                snapshot = self._current()
                if key in snapshot.cache:
                    continue
                self._get_or_build(snapshot, key)
                built += 1
            return built

        snapshot = self._current()
        shared = PairCubeBuilder(snapshot.dataset, self._attributes)

        def _build(key: Tuple[str, ...]) -> int:
            if key in snapshot.cache:
                return 0
            cube = shared.build(key)
            with self._lock:
                if self._snapshot is snapshot and (
                    key not in snapshot.cache
                ):
                    snapshot.cache[key] = cube
                    return 1
            return 0

        with ThreadPoolExecutor(max_workers=workers) as pool:
            return sum(pool.map(_build, missing))

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def _validate_batch(self, batch: Dataset) -> None:
        if batch.schema != self._schema:
            raise CubeError(
                "batch schema does not match the store's data set"
            )
        class_codes = batch.class_codes
        if class_codes.size:
            n_classes = self._schema.n_classes
            invalid = (class_codes < MISSING) | (class_codes >= n_classes)
            if invalid.any():
                row = int(np.argmax(invalid))
                code = int(class_codes[row])
                labels = self._schema.class_attribute.values
                raise CubeError(
                    f"batch class column contains code {code} (row "
                    f"{row}), outside the schema's class labels "
                    f"{labels!r}"
                )

    def absorb(
        self,
        batch: Dataset,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        wal_seq: Optional[int] = None,
    ) -> int:
        """Fold a new batch of records into every materialised cube.

        The paper's data arrives monthly; because cubes are count
        tensors, absorbing a batch is one counting pass over the batch
        plus a tensor addition per cached cube — the historical records
        are never rescanned.  The batch is counted *once* into shared
        per-attribute code columns (:class:`PairCubeBuilder`); each
        cached cube's delta is then a single ``bincount``, fanned over
        ``executor`` (or a transient ``workers``-wide pool) when the
        cache is large.

        All counting happens outside any reader-visible lock, against
        the snapshot current at entry; the only shared mutation is the
        final snapshot swap.  Readers concurrently see either the old
        world or the new one, never a mix, and never wait.  A failure
        anywhere in the delta sweep (including the ``store.absorb``
        fault site) leaves the store exactly as it was.

        A zero-row batch is a no-op: no generation bump, no cube
        touched, returns 0.

        ``wal_seq`` is the batch's already-known log sequence number
        when it arrives *from* WAL replay (no log is bound then);
        backend stores stamp it into their durable row storage so the
        next restart's replay can skip records the rows already
        contain.  Live absorbs leave it ``None`` — the bound WAL's
        append assigns the number.

        Returns the number of cubes updated.
        """
        self._validate_batch(batch)
        if batch.n_rows == 0:
            return 0
        with self._write_lock:
            snapshot = self._snapshot
            keys = list(snapshot.cache)
            trip(
                SITE_STORE_ABSORB,
                rows=batch.n_rows,
                cubes=len(keys),
            )
            if self._wal is not None:
                # Write-ahead: the batch is durable before anything is
                # mutated.  An append failure aborts the absorb with
                # the old snapshot still serving; a failure *after*
                # this point leaves a logged-but-unapplied record that
                # replay applies on restart (at-least-once for batches
                # whose acknowledgement was lost).
                seq = self._wal.append(batch, shard=self._wal_shard)
                if isinstance(seq, int):
                    wal_seq = seq
            merged: Dict[Tuple[str, ...], RuleCube] = {}
            if keys:
                names = sorted({name for key in keys for name in key})
                shared = PairCubeBuilder(batch, names)

                def _merge(
                    key: Tuple[str, ...]
                ) -> Tuple[Tuple[str, ...], RuleCube]:
                    return key, snapshot.cache[key].merge(
                        shared.build(key)
                    )

                fan = len(keys) >= self.ABSORB_FAN_THRESHOLD
                if executor is not None and fan:
                    merged = dict(executor.map(_merge, keys))
                elif workers is not None and workers > 1 and fan:
                    with ThreadPoolExecutor(max_workers=workers) as pool:
                        merged = dict(pool.map(_merge, keys))
                else:
                    merged = dict(map(_merge, keys))
            if self._backend is not None:
                # The rows become durable (spill/sqlite) or buffered
                # (memory) here, stamped with the batch's WAL sequence
                # number; a failure leaves the old snapshot serving
                # and — for durable backends — a torn append that the
                # manifest never advanced over.  The returned view
                # carries the new frozen row bound.
                new_dataset = self._backend.append(  # type: ignore[attr-defined]
                    batch, wal_seq=wal_seq
                )
            else:
                new_dataset = self._append.append(batch)
            with self._lock:
                with span(
                    "ingest.swap",
                    rows=batch.n_rows,
                    cubes=len(merged),
                ):
                    # Keys lazily built after the keys-list copy above
                    # are dropped here (they lack the batch's counts);
                    # the next reader rebuilds them from the new
                    # dataset.
                    self._snapshot = _Snapshot(
                        merged, new_dataset, snapshot.generation + 1
                    )
        return len(merged)

    def bind_wal(self, wal: object, shard: Optional[int] = None) -> None:
        """Log every subsequently absorbed batch to ``wal`` first.

        ``wal`` is duck-typed (``append(batch, shard=...)``), normally
        a :class:`~repro.cube.wal.WriteAheadLog`.  ``shard`` tags each
        record when this store is one shard of a
        :class:`~repro.cube.sharded.ShardedCubeStore`.  Bind *after*
        replaying the log (:func:`repro.cube.wal.replay_into`), or the
        replayed batches would be re-appended to the log they came
        from.
        """
        if wal is not None and not callable(getattr(wal, "append", None)):
            raise CubeError(
                "a write-ahead log must expose append(batch, shard=...)"
            )
        with self._write_lock:
            self._wal = wal
            self._wal_shard = shard

    @property
    def wal(self) -> Optional[object]:
        """The bound write-ahead log, if any."""
        return self._wal

    def cached_items(self) -> Dict[Tuple[str, ...], RuleCube]:
        """Snapshot of the materialised cubes, keyed by the canonical
        (sorted) attribute tuple.  Used by persistence."""
        return dict(self._current().cache)

    def inject(self, attributes: Tuple[str, ...], cube: RuleCube) -> None:
        """Place an externally built cube into the cache.

        The key must be the canonical sorted attribute tuple and the
        cube's structure must match the store's schema — this is how
        persisted off-line cubes warm a fresh store.
        """
        if tuple(sorted(attributes)) != tuple(attributes):
            raise CubeError(
                "injection key must be the sorted attribute tuple"
            )
        schema = self._schema
        if cube.class_attribute != schema.class_attribute:
            raise CubeError(
                "cube class attribute does not match the store's "
                "data set"
            )
        for attr in cube.attributes:
            if attr.name not in self._attributes:
                raise CubeError(
                    f"cube attribute {attr.name!r} is not managed by "
                    "this store"
                )
            if schema[attr.name] != attr:
                raise CubeError(
                    f"cube attribute {attr.name!r} does not match the "
                    "store's schema"
                )
        if cube.names != tuple(attributes):
            raise CubeError("cube axes do not match the injection key")
        with self._lock:
            self._snapshot.cache[tuple(attributes)] = cube

    def install_cache(
        self,
        cubes: Dict[Tuple[str, ...], RuleCube],
        generation: int,
        retain: object = None,
        dataset: object = None,
    ) -> None:
        """Swap in an externally published cube set as a new snapshot.

        The worker side of the shared-memory publish protocol
        (:mod:`repro.cube.shm`): the whole cache is replaced in one
        pointer swap — concurrent readers see the old world or the new
        one, never a mix, exactly like :meth:`absorb` — and
        ``generation`` mirrors the *publisher's* store generation, so
        the engine's generation-keyed result cache invalidates on the
        worker exactly when it would have on the publisher.

        ``retain`` (typically the attached ``SharedMemory`` segment)
        is anchored on the snapshot so the mapping behind the
        zero-copy cube views outlives every pinned reader.
        ``dataset`` optionally replaces the snapshot's dataset with a
        facade carrying the publisher's real schema/row count (the
        worker holds no rows).  The store becomes **attach-only**:
        lazy builds raise :class:`CubeError` instead of silently
        counting zeros from the empty local dataset.
        """
        for key, cube in cubes.items():
            if tuple(sorted(key)) != tuple(key):
                raise CubeError(
                    "installed keys must be sorted attribute tuples"
                )
            if cube.names != tuple(key):
                raise CubeError(
                    f"cube axes {cube.names!r} do not match key {key!r}"
                )
        with self._write_lock:
            with self._lock:
                self._remote = True
                self._snapshot = _Snapshot(
                    dict(cubes),
                    dataset if dataset is not None else self._snapshot.dataset,
                    generation,
                    retain,
                )

    def invalidate(self) -> None:
        """Drop every cached cube (e.g. after swapping the data set)."""
        with self._write_lock:
            with self._lock:
                old = self._snapshot
                self._snapshot = _Snapshot(
                    {}, old.dataset, old.generation + 1
                )

    def __repr__(self) -> str:
        snapshot = self._current()
        return (
            f"CubeStore({len(self._attributes)} attributes, "
            f"{len(snapshot.cache)} cubes cached, "
            f"generation {snapshot.generation})"
        )

"""Cube store: the system's materialised cube layer.

"In our current implementation, we store all 3-dimensional rule cubes.
For each cube, one of the dimensions is always the class attribute"
(Section III.B).  The store offers exactly that contract:

* :meth:`CubeStore.precompute` materialises every pair cube up front
  (the off-line, "in the evening" phase);
* :meth:`CubeStore.cube` returns any requested cube, serving from the
  cache when possible (a pair cube requested in either attribute order
  is served by transposing the cached one) and counting lazily
  otherwise;
* once cubes exist, downstream consumers (the comparator, the GI miner,
  the visualizer) never touch the raw records — which is why the
  comparison time in Fig. 9 is independent of the data-set size.

Thread-safety: every access to the cube cache — the lazy fill in
:meth:`CubeStore.cube`, :meth:`CubeStore.precompute`,
:meth:`CubeStore.absorb`, :meth:`CubeStore.inject` — is guarded by an
internal re-entrant lock, so concurrent readers (the comparison
service's worker pool) can hammer one store safely.  Cube *counting*
itself happens outside the lock behind per-key singleflight build
latches: the first requester of a missing cube becomes its builder,
concurrent requesters of the same key wait on its latch, and readers
of other (cached) cubes are never blocked by someone else's slow lazy
build.  A data-set generation counter makes builds that raced an
:meth:`absorb` harmless — the stale cube is returned to its requester
(it is correct for the snapshot that requester saw) but not cached.

The lock makes individual operations atomic; *sequences* spanning a
data-set swap (absorb + subsequent reads that must see the new counts)
are the caller's responsibility — the service engine enforces
single-writer semantics with a readers–writer lock on top.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..dataset.table import Dataset
from ..service.tracing import span
from ..testing.sites import SITE_STORE_CUBE, trip
from .builder import PairCubeBuilder, build_cube
from .rulecube import CubeError, RuleCube

__all__ = ["CubeStore"]


class CubeStore:
    """Cache of rule cubes over one data set.

    Parameters
    ----------
    dataset:
        The (fully categorical) data set cubes are counted from.
    attributes:
        The condition attributes the store manages; defaults to all.
        The paper's analysts restricted the 600+ raw attributes to the
        ~200 performance-related ones — pass that subset here.
    max_cells:
        Upper bound on a single cube's cell count.  Dense cubes over
        high-arity attributes (cell ids, serial numbers) explode
        quadratically; requests beyond the bound raise
        :class:`CubeError` with a pointer to
        :func:`repro.dataset.reduce_arity` instead of silently eating
        memory.  ``None`` disables the guard.
    """

    #: Default per-cube cell budget (~80 MB of int64 counts).
    DEFAULT_MAX_CELLS = 10_000_000

    def __init__(
        self,
        dataset: Dataset,
        attributes: Optional[Sequence[str]] = None,
        max_cells: Optional[int] = DEFAULT_MAX_CELLS,
    ) -> None:
        schema = dataset.schema
        if attributes is None:
            attributes = [a.name for a in schema.condition_attributes]
        else:
            for name in attributes:
                attr = schema[name]  # raises on unknown names
                if name == schema.class_name:
                    raise CubeError(
                        "the class attribute cannot be a condition "
                        "attribute of the store"
                    )
                if not attr.is_categorical:
                    raise CubeError(
                        f"store attribute {name!r} is continuous; "
                        "discretise the data set first"
                    )
        if max_cells is not None and max_cells < 1:
            raise CubeError("max_cells must be positive or None")
        self._dataset = dataset
        self._attributes: Tuple[str, ...] = tuple(attributes)
        self._max_cells = max_cells
        self._cache: Dict[Tuple[str, ...], RuleCube] = {}
        # Guards _cache, _building and the _dataset swap in absorb();
        # re-entrant because absorb -> merge happens under the same
        # lock.  Never held across build_cube — builds run behind the
        # per-key latches in _building.
        self._lock = threading.RLock()
        self._building: Dict[Tuple[str, ...], threading.Event] = {}
        # Bumped whenever the backing data set changes; a build that
        # started against an older generation must not enter the cache.
        self._data_gen = 0

    def cube_cells(self, attributes: Sequence[str]) -> int:
        """Cell count of the (hypothetical) cube over ``attributes``."""
        schema = self._dataset.schema
        cells = schema.n_classes
        for name in attributes:
            cells *= schema[name].arity
        return cells

    def _check_budget(self, attributes: Sequence[str]) -> None:
        if self._max_cells is None:
            return
        cells = self.cube_cells(attributes)
        if cells > self._max_cells:
            raise CubeError(
                f"cube over {tuple(attributes)} would have {cells} "
                f"cells (budget: {self._max_cells}); reduce the "
                "arity of high-cardinality attributes first "
                "(repro.dataset.reduce_arity) or raise max_cells"
            )

    @property
    def dataset(self) -> Dataset:
        """The backing data set."""
        return self._dataset

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Condition attributes the store manages."""
        return self._attributes

    @property
    def n_cached(self) -> int:
        """Number of cubes currently materialised."""
        with self._lock:
            return len(self._cache)

    def _validate_key(self, attributes: Sequence[str]) -> Tuple[str, ...]:
        requested = tuple(attributes)
        for name in requested:
            if name not in self._attributes:
                raise CubeError(
                    f"attribute {name!r} is not managed by this store"
                )
        if len(set(requested)) != len(requested):
            raise CubeError(f"duplicate attributes: {requested}")
        return requested

    def _get_or_build(self, canonical: Tuple[str, ...]) -> RuleCube:
        """Fetch a canonical-key cube, building it *outside* the lock.

        Singleflight: the first thread to miss on a key registers a
        build latch and counts the cube; every concurrent requester of
        the same key waits on the latch instead of duplicating the
        work (or blocking on the store lock, as the old
        build-under-lock path did).  Waiters loop rather than sharing
        the builder's result directly, so a failed build surfaces its
        error in whichever thread retries, not a borrowed exception.
        """
        while True:
            with self._lock:
                cube = self._cache.get(canonical)
                if cube is not None:
                    return cube
                latch = self._building.get(canonical)
                if latch is None:
                    self._check_budget(canonical)
                    latch = threading.Event()
                    self._building[canonical] = latch
                    dataset = self._dataset
                    generation = self._data_gen
                    break
            latch.wait()
        try:
            with span("cube.build", key=list(canonical)):
                cube = build_cube(dataset, canonical)
            with self._lock:
                if generation == self._data_gen:
                    self._cache[canonical] = cube
            return cube
        finally:
            with self._lock:
                self._building.pop(canonical, None)
            latch.set()

    def cube(self, attributes: Sequence[str]) -> RuleCube:
        """The rule cube over ``attributes`` (+ class), cached.

        Cubes are cached under the sorted attribute tuple; a request in
        a different axis order is served by transposing the cached cube
        (counts are order-independent).  Hot-path callers should
        request the canonical sorted order (or use :meth:`planes`) and
        index the axis they need directly — the transpose allocates.

        This is a declared fault site (``store.cube``): a chaos run
        can make any cube read slow or fail here, standing in for a
        sick disk or remote store (see :mod:`repro.testing`).
        """
        trip(SITE_STORE_CUBE, attributes=tuple(attributes))
        requested = self._validate_key(attributes)
        canonical = tuple(sorted(requested))
        cube = self._get_or_build(canonical)
        if requested != canonical:
            cube = cube.transpose(requested)
        return cube

    def planes(
        self, keys: Sequence[Sequence[str]]
    ) -> List[RuleCube]:
        """Bulk cube read: every requested cube in one cache pass.

        Returns the cubes in **canonical (sorted) axis order**, one per
        requested key, without transposing — batch consumers (the
        comparison kernel) index the axis they need directly.  The
        cached-cube lookup is a single lock acquisition for the whole
        batch, rather than one per cube; only keys that miss fall back
        to the singleflight build path.

        Fault-site contract: trips ``store.cube`` once per requested
        key, in request order, with the requested (pre-canonical)
        attribute tuple as context — exactly the trip sequence a loop
        of :meth:`cube` calls would produce, so chaos plans and their
        seeded PRNG streams behave identically on both paths.
        """
        with span("store.planes", cubes=len(keys)) as planes_span:
            canonicals: List[Tuple[str, ...]] = []
            for key in keys:
                trip(SITE_STORE_CUBE, attributes=tuple(key))
                requested = self._validate_key(key)
                canonicals.append(tuple(sorted(requested)))
            with self._lock:
                cached = [self._cache.get(c) for c in canonicals]
            planes_span.annotate(
                misses=sum(1 for cube in cached if cube is None)
            )
            return [
                cube if cube is not None else self._get_or_build(canonical)
                for canonical, cube in zip(canonicals, cached)
            ]

    def pair_cube(self, a: str, b: str) -> RuleCube:
        """Convenience for the 3-dimensional cube over ``(a, b, class)``."""
        return self.cube((a, b))

    def single_cube(self, a: str) -> RuleCube:
        """Convenience for the 2-dimensional cube over ``(a, class)``."""
        return self.cube((a,))

    def class_distribution_cube(self) -> RuleCube:
        """The 1-dimensional class-only cube.

        Routed through :meth:`cube` with the empty key, so the
        ``store.cube`` fault site and the cell budget apply to it like
        to every other cube read (it used to bypass both).
        """
        return self.cube(())

    def _missing_keys(
        self, include_pairs: bool
    ) -> List[Tuple[str, ...]]:
        keys: List[Tuple[str, ...]] = [
            (name,) for name in self._attributes
        ]
        if include_pairs:
            for i, a in enumerate(self._attributes):
                for b in self._attributes[i + 1:]:
                    keys.append(tuple(sorted((a, b))))
        with self._lock:
            return [k for k in keys if k not in self._cache]

    def precompute(
        self,
        include_pairs: bool = True,
        workers: Optional[int] = None,
    ) -> int:
        """Materialise all 2-D and (optionally) all 3-D cubes.

        Returns the number of cubes built.  This is the system's
        off-line generation phase benchmarked in Figs. 10 and 11.

        With ``workers=N`` the pair-cube sweep is fanned across a
        ``ThreadPoolExecutor`` whose builds share one
        :class:`~repro.cube.builder.PairCubeBuilder` — per-column
        validity masks and pre-multiplied mixed-radix codes are
        computed once per attribute instead of once per cube, and the
        store lock is only taken for the final cache inserts, so
        concurrent readers keep being served while precompute runs.
        The counts are bit-identical to the serial path's.
        """
        missing = self._missing_keys(include_pairs)
        if not missing:
            return 0
        if workers is None or workers <= 1:
            built = 0
            for key in missing:
                with self._lock:
                    if key in self._cache:
                        continue
                self._get_or_build(key)
                built += 1
            return built

        with self._lock:
            dataset = self._dataset
            generation = self._data_gen
        shared = PairCubeBuilder(dataset, self._attributes)

        def _build(key: Tuple[str, ...]) -> int:
            with self._lock:
                if key in self._cache:
                    return 0
            cube = shared.build(key)
            with self._lock:
                if generation == self._data_gen and (
                    key not in self._cache
                ):
                    self._cache[key] = cube
                    return 1
            return 0

        with ThreadPoolExecutor(max_workers=workers) as pool:
            return sum(pool.map(_build, missing))

    def absorb(self, batch: Dataset) -> int:
        """Fold a new batch of records into every materialised cube.

        The paper's data arrives monthly; because cubes are count
        tensors, absorbing a batch is one counting pass over the batch
        plus a tensor addition per cached cube — the historical records
        are never rescanned.  The store's backing data set becomes the
        concatenation (so lazily built cubes stay consistent).

        Returns the number of cubes updated.
        """
        if batch.schema != self._dataset.schema:
            raise CubeError(
                "batch schema does not match the store's data set"
            )
        updated = 0
        with self._lock:
            for key in list(self._cache):
                delta = build_cube(batch, key)
                self._cache[key] = self._cache[key].merge(delta)
                updated += 1
            self._dataset = self._dataset.concat(batch)
            self._data_gen += 1
        return updated

    def cached_items(self) -> Dict[Tuple[str, ...], RuleCube]:
        """Snapshot of the materialised cubes, keyed by the canonical
        (sorted) attribute tuple.  Used by persistence."""
        with self._lock:
            return dict(self._cache)

    def inject(self, attributes: Tuple[str, ...], cube: RuleCube) -> None:
        """Place an externally built cube into the cache.

        The key must be the canonical sorted attribute tuple and the
        cube's structure must match the store's schema — this is how
        persisted off-line cubes warm a fresh store.
        """
        if tuple(sorted(attributes)) != tuple(attributes):
            raise CubeError(
                "injection key must be the sorted attribute tuple"
            )
        schema = self._dataset.schema
        if cube.class_attribute != schema.class_attribute:
            raise CubeError(
                "cube class attribute does not match the store's "
                "data set"
            )
        for attr in cube.attributes:
            if attr.name not in self._attributes:
                raise CubeError(
                    f"cube attribute {attr.name!r} is not managed by "
                    "this store"
                )
            if schema[attr.name] != attr:
                raise CubeError(
                    f"cube attribute {attr.name!r} does not match the "
                    "store's schema"
                )
        if cube.names != tuple(attributes):
            raise CubeError("cube axes do not match the injection key")
        with self._lock:
            self._cache[tuple(attributes)] = cube

    def invalidate(self) -> None:
        """Drop every cached cube (e.g. after swapping the data set)."""
        with self._lock:
            self._cache.clear()
            self._data_gen += 1

    def __repr__(self) -> str:
        return (
            f"CubeStore({len(self._attributes)} attributes, "
            f"{len(self._cache)} cubes cached)"
        )

"""Sharded cube store: scatter-gather reads over partitioned counts.

The paper's deployment target is 200 GB of call logs *per month* —
no single in-memory :class:`~repro.cube.store.CubeStore` holds a year
of that.  But rule-cube cells are additive ``GROUP BY`` counts, so a
cube over the whole fleet is exactly the cell-wise sum of the same
cube over any partition of the rows:

    ``count_D(cell) = sum_s count_{D_s}(cell)``    for D = ⊎ D_s.

:class:`ShardedCubeStore` exploits that identity.  It implements the
store *read* API (``cube``, ``planes``, ``class_distribution_cube``,
``pinned``, ``generation``) over N inner :class:`CubeStore` shards by
scattering each read across a worker pool, gathering the per-shard
count tensors, and merging them — dtype-widened and overflow-checked
(:func:`merge_count_tensors`) — before anything downstream scores
them.  The comparator, the batched kernel and the fleet screen consume
it unchanged: they only ever see ordinary :class:`RuleCube` objects.

Consistency model — vector-clock snapshots
------------------------------------------

Each shard keeps its own copy-on-write snapshot discipline; the
sharded store's unit of consistency is a :class:`_ShardedSnapshot`, a
tuple holding *one immutable snapshot per shard*, captured in shard
order on the reading thread.  ``generation`` is therefore a **vector
clock** ``(g_0, ..., g_{n-1})``, one component per shard; an absorb
routed to shard *k* bumps only ``g_k``.  Because scatter tasks re-pin
each worker-pool thread to the captured per-shard snapshot
(:meth:`CubeStore.pinned_to`), a read that straddles a concurrent
absorb still resolves every shard against the snapshot captured at
entry: the generation vector a ``pinned()`` block reports can never be
torn, by construction rather than by locking.

Pool ownership — the scatter pool is the store's *own*
``ThreadPoolExecutor`` (one thread per shard), not the engine's
compare pool.  Comparisons already run *on* the engine pool; if shard
reads queued behind them on the same bounded pool, a pool-full moment
would deadlock (every worker blocked gathering reads that can never be
scheduled).  A dedicated pool bounded by the shard count keeps the
fan-out fixed and the two layers composable.

Failure model — a shard read that dies with an infrastructure error
(injected via the ``shard.read`` fault site, or a real failure inside
the inner store) surfaces as a typed :class:`ShardReadError` naming
the shard, which the service layer maps to a 503 partial-failure
response and a breaker trip — never a traceback, and never a silently
merged partial count.  Domain errors (unknown attribute, budget
exceeded) propagate unchanged: they would fail identically on every
shard and are the *caller's* fault, not a shard's.

Cross-store comparison (paper §V.C, "this month vs last month")
reuses :func:`merge_count_tensors` deliberately: whether counts are
merged across shards of one store or compared across two stores, it
is the same widen-check-sum code path, tested once.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Executor, Future, ThreadPoolExecutor
from contextlib import contextmanager
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..dataset.schema import Schema
from ..dataset.table import Dataset
from ..service.tracing import current_span, current_trace, resume_trace, span
from ..testing.sites import SITE_SHARD_READ, trip
from .rulecube import CubeError, RuleCube
from .store import CubeStore, _Snapshot

__all__ = [
    "ShardedCubeStore",
    "ShardReadError",
    "merge_count_tensors",
    "merge_cubes",
    "shard_rows",
    "shard_by_column",
]


class ShardReadError(RuntimeError):
    """One shard's scatter read failed; the merged result would lie.

    Carries the failing shard's index so the service layer can report
    *which* shard is sick (and chaos tests can assert it).  Derives
    from :class:`RuntimeError`, not :class:`ValueError`: this is an
    infrastructure failure — the request was fine — so it takes the
    503/breaker path, not the 400 one.
    """

    def __init__(self, message: str, shard: int) -> None:
        super().__init__(message)
        self.shard = shard


def merge_count_tensors(arrays: Iterable[np.ndarray]) -> np.ndarray:
    """Sum count tensors cell-wise, widened to int64, overflow-checked.

    The single merge kernel behind both shard gathers and cross-store
    comparison.  Every input is widened to ``int64`` *before* the sum
    — narrower planted counts (e.g. ``int32`` near its max) merge
    exactly instead of wrapping in their native dtype — and each
    accumulation step is checked: two non-negative ``int64`` addends
    whose true sum exceeds the type wrap to a *negative* value (the
    true sum is below 2^64, so the wrapped bit pattern has the sign
    bit set), which a single ``min() < 0`` scan detects.  Overflow
    raises a typed :class:`CubeError` instead of silently corrupting
    counts.
    """
    it = iter(arrays)
    try:
        first = next(it)
    except StopIteration:
        raise CubeError("cannot merge zero count tensors") from None
    acc = np.asarray(first).astype(np.int64)  # always copy: inputs are
    # read-only cube tensors and the accumulator is mutated in place.
    if acc.size and acc.min() < 0:
        raise CubeError("count tensors must be non-negative")
    for arr in it:
        arr = np.asarray(arr)
        if arr.shape != acc.shape:
            raise CubeError(
                f"count tensor shape {arr.shape} does not match "
                f"{acc.shape}"
            )
        widened = arr.astype(np.int64, copy=False)
        if widened.size and widened.min() < 0:
            raise CubeError("count tensors must be non-negative")
        acc += widened
        if acc.size and acc.min() < 0:
            raise CubeError(
                "count merge overflowed int64; the merged population "
                "is too large to count exactly"
            )
    return acc


def merge_cubes(cubes: Sequence[RuleCube]) -> RuleCube:
    """Merge same-structure cubes through :func:`merge_count_tensors`.

    Unlike chained :meth:`RuleCube.merge` this widens and
    overflow-checks (and allocates one accumulator instead of one
    tensor per addition).  A single cube merges to itself unchanged.
    """
    if not cubes:
        raise CubeError("cannot merge zero cubes")
    head = cubes[0]
    if len(cubes) == 1:
        return head
    for other in cubes[1:]:
        if (
            other.attributes != head.attributes
            or other.class_attribute != head.class_attribute
        ):
            raise CubeError("cannot merge cubes with different structure")
    counts = merge_count_tensors(c.counts for c in cubes)
    return RuleCube(head.attributes, head.class_attribute, counts)


def shard_rows(dataset: Dataset, n_shards: int) -> Tuple[Dataset, ...]:
    """Partition rows round-robin into ``n_shards`` datasets.

    Shard *i* takes rows ``i, i + n, i + 2n, ...`` — a deterministic,
    order-preserving deal that balances shard sizes to within one row
    whatever the input distribution looks like.
    """
    if n_shards < 1:
        raise CubeError("n_shards must be positive")
    return tuple(
        dataset.take(np.arange(i, dataset.n_rows, n_shards))
        for i in range(n_shards)
    )


def shard_by_column(
    dataset: Dataset, column: str, n_shards: int
) -> Tuple[Dataset, ...]:
    """Partition rows by a categorical column's code, mod ``n_shards``.

    Rows with the same value of ``column`` always land on the same
    shard — the routing function future ingest batches use — so a
    per-value workload (one phone model, one month) touches one shard.
    Missing values (code −1) land on shard ``n_shards − 1``: numpy's
    floor-mod maps −1 to ``n − 1``, deterministically.
    """
    if n_shards < 1:
        raise CubeError("n_shards must be positive")
    attr = dataset.schema[column]  # raises on unknown names
    if not attr.is_categorical:
        raise CubeError(
            f"shard column {column!r} is continuous; discretise first"
        )
    owners = dataset.column(column) % n_shards
    return tuple(
        dataset.take(np.flatnonzero(owners == i)) for i in range(n_shards)
    )


class _ShardedSnapshot:
    """One immutable per-shard snapshot vector.

    The sharded store's unit of consistency: every read inside one
    ``pinned()`` block resolves each shard against the same captured
    :class:`~repro.cube.store._Snapshot`, so the generation vector and
    every merged cube describe one frozen world.
    """

    __slots__ = ("snapshots",)

    def __init__(self, snapshots: Tuple[_Snapshot, ...]) -> None:
        self.snapshots = snapshots

    @property
    def generation(self) -> Tuple[int, ...]:
        return tuple(s.generation for s in self.snapshots)

    @property
    def n_rows(self) -> int:
        return sum(s.dataset.n_rows for s in self.snapshots)


class _DatasetFacade:
    """The slice of the ``Dataset`` API store consumers actually use.

    The comparator needs ``.schema`` (to resolve pivots and candidate
    attributes) and the service layer needs ``.n_rows``; materialising
    a concatenated dataset would defeat the point of sharding, so the
    facade answers both from the snapshot vector without copying a
    row.  Anything needing the raw rows must go to the shards.
    """

    __slots__ = ("schema", "n_rows")

    def __init__(self, schema: Schema, n_rows: int) -> None:
        self.schema = schema
        self.n_rows = n_rows


class ShardedCubeStore:
    """N cube stores behind the one-store read API.

    Parameters
    ----------
    shards:
        The inner :class:`CubeStore` objects.  All must share one
        schema and one condition-attribute tuple.
    shard_by:
        The routing column for :meth:`absorb`, or ``None`` for
        row-balanced routing (each batch lands whole on the currently
        smallest shard).  Must match how the data was partitioned
        (:func:`shard_by_column` / :func:`shard_rows`) or per-value
        locality is lost — correctness never depends on it, because
        counts are additive under *any* partition.
    executor:
        Scatter pool override; defaults to a dedicated pool with one
        thread per shard (see the module docstring for why the engine
        pool is not reused).
    """

    def __init__(
        self,
        shards: Sequence[CubeStore],
        shard_by: Optional[str] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        if not shards:
            raise CubeError("a sharded store needs at least one shard")
        shards = tuple(shards)
        schema = shards[0].dataset.schema
        attributes = shards[0].attributes
        for i, shard in enumerate(shards[1:], start=1):
            if shard.dataset.schema != schema:
                raise CubeError(
                    f"shard {i} schema does not match shard 0"
                )
            if shard.attributes != attributes:
                raise CubeError(
                    f"shard {i} attributes do not match shard 0"
                )
        self._shards = shards
        self._schema = schema
        if shard_by is not None:
            attr = schema[shard_by]
            if not attr.is_categorical:
                raise CubeError(
                    f"shard column {shard_by!r} is continuous"
                )
        self._shard_by = shard_by
        self._pool = executor or ThreadPoolExecutor(
            max_workers=len(shards), thread_name_prefix="repro-shard"
        )
        self._owns_pool = executor is None
        # Serialises absorbs: least-loaded routing reads shard sizes
        # and must not race another routing decision.
        self._write_lock = threading.Lock()
        # Per-thread pinned snapshot vector (mirrors CubeStore).
        self._local = threading.local()
        self._metrics = None
        self._metrics_store = ""
        self._wal = None
        # Outermost sharded-level pins per generation vector; the
        # shards track their own component pins separately.
        self._pins: Dict[Tuple[int, ...], int] = {}
        self._pins_lock = threading.Lock()

    @classmethod
    def from_dataset(
        cls,
        dataset: Dataset,
        n_shards: int,
        shard_by: Optional[str] = None,
        attributes: Optional[Sequence[str]] = None,
        max_cells: Optional[int] = CubeStore.DEFAULT_MAX_CELLS,
        executor: Optional[Executor] = None,
    ) -> "ShardedCubeStore":
        """Partition ``dataset`` and build one :class:`CubeStore` each.

        Row-partitioned (round-robin) by default; with ``shard_by``
        the named column's code routes rows (and future ingest) to
        shards.
        """
        if shard_by is None:
            parts = shard_rows(dataset, n_shards)
        else:
            parts = shard_by_column(dataset, shard_by, n_shards)
        stores = tuple(
            CubeStore(part, attributes=attributes, max_cells=max_cells)
            for part in parts
        )
        return cls(stores, shard_by=shard_by, executor=executor)

    # ------------------------------------------------------------------
    # Snapshot access
    # ------------------------------------------------------------------

    def _capture(self) -> _ShardedSnapshot:
        """The thread's pinned snapshot vector, or a fresh capture.

        A fresh capture reads each shard's live snapshot reference in
        shard order — each component is internally consistent; the
        vector as a whole is the consistency unit only under
        :meth:`pinned` (exactly the single-store contract, where one
        unpinned read is self-consistent but a *sequence* needs the
        pin).
        """
        pinned = getattr(self._local, "snapshot", None)
        if pinned is not None:
            return pinned
        return _ShardedSnapshot(
            tuple(s.current_snapshot() for s in self._shards)
        )

    @contextmanager
    def pinned(self) -> Iterator[_ShardedSnapshot]:
        """Pin the calling thread to one snapshot vector.

        Every read inside the block — including its scattered parts on
        the pool threads — resolves against the same per-shard
        snapshots, so concurrent absorbs on any shard are invisible
        and the generation vector cannot be torn.  Nested pins keep
        the outermost vector.
        """
        previous = getattr(self._local, "snapshot", None)
        snapshot = previous if previous is not None else self._capture()
        self._local.snapshot = snapshot
        if previous is None:
            with self._pins_lock:
                gen = snapshot.generation
                self._pins[gen] = self._pins.get(gen, 0) + 1
        try:
            yield snapshot
        finally:
            self._local.snapshot = previous
            if previous is None:
                with self._pins_lock:
                    gen = snapshot.generation
                    remaining = self._pins.get(gen, 0) - 1
                    if remaining <= 0:
                        self._pins.pop(gen, None)
                    else:
                        self._pins[gen] = remaining

    @property
    def dataset(self) -> _DatasetFacade:
        """Schema and total row count of the current snapshot vector.

        A facade, not a :class:`Dataset`: consumers of the store read
        API only use ``.schema`` and ``.n_rows``, and concatenating
        shard rows to answer those would defeat the sharding.
        """
        snapshot = self._capture()
        return _DatasetFacade(self._schema, snapshot.n_rows)

    @property
    def generation(self) -> Tuple[int, ...]:
        """Vector clock: one generation component per shard."""
        return self._capture().generation

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Condition attributes (identical across shards)."""
        return self._shards[0].attributes

    @property
    def shards(self) -> Tuple[CubeStore, ...]:
        """The inner stores, in shard order."""
        return self._shards

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def n_cached(self) -> int:
        """Total cubes materialised across shards."""
        return sum(s.n_cached for s in self._shards)

    @property
    def shard_by(self) -> Optional[str]:
        """The ingest-routing column, or ``None`` for row balancing."""
        return self._shard_by

    def bind_metrics(self, metrics: object, store_name: str) -> None:
        """Attach a metrics panel so reads record fan-out and merge time.

        Called by the engine when the store is registered; duck-typed
        (the cube layer must stay importable without the service
        stack), so ``metrics`` only needs ``shard_fanout`` /
        ``shard_merge_seconds`` histogram attributes.  Forwarded to
        every shard so backend-backed shards time their scans too.
        """
        self._metrics = metrics
        self._metrics_store = store_name
        for shard in self._shards:
            shard.bind_metrics(metrics, store_name)

    def bind_wal(self, wal: object) -> None:
        """Bind one write-ahead log per shard (one WAL per shard).

        ``wal`` must expose ``logs`` — one log per shard, in shard
        order (see :class:`repro.cube.wal.ShardedWal`).  Each inner
        store appends its routed sub-batch to its *own* log inside its
        own absorb, tagged with the shard index, so the durable record
        and the in-memory mutation stay under the same write lock.
        Bind after replay, exactly like the single-store contract.
        """
        logs = getattr(wal, "logs", None)
        if logs is None or len(logs) != len(self._shards):
            raise CubeError(
                f"a sharded store with {len(self._shards)} shards "
                "needs a per-shard WAL with a matching number of logs"
            )
        with self._write_lock:
            self._wal = wal
            for index, (shard, log) in enumerate(
                zip(self._shards, logs)
            ):
                shard.bind_wal(log, shard=index)

    @property
    def wal(self) -> Optional[object]:
        """The bound per-shard write-ahead log, if any."""
        return self._wal

    def retention_info(self) -> Dict[str, int]:
        """Aggregate snapshot-retention accounting across shards.

        Counts both shard-level pins (scatter reads pinning individual
        components) and sharded-level pins (a ``with store.pinned():``
        block holding a whole snapshot vector — and every shard's
        ``AppendBuffer`` prefix inside it — alive).
        """
        infos = [shard.retention_info() for shard in self._shards]
        current = tuple(
            shard._snapshot.generation for shard in self._shards
        )
        with self._pins_lock:
            vector_pins = dict(self._pins)
        return {
            "current_generation": max(
                info["current_generation"] for info in infos
            ),
            "active_pins": sum(info["active_pins"] for info in infos)
            + sum(vector_pins.values()),
            "pinned_generations": sum(
                info["pinned_generations"] for info in infos
            )
            + len(vector_pins),
            "stale_pinned_generations": sum(
                info["stale_pinned_generations"] for info in infos
            )
            + sum(1 for gen in vector_pins if gen != current),
        }

    # ------------------------------------------------------------------
    # Scatter-gather reads
    # ------------------------------------------------------------------

    def _shard_planes(
        self,
        index: int,
        snapshot: _Snapshot,
        keys: Sequence[Tuple[str, ...]],
        trace: object,
        parent_span: object,
    ) -> List[RuleCube]:
        """One shard's slice of a scatter: runs on a pool thread.

        Re-pins the worker thread to the snapshot captured on the
        calling thread (``pinned()`` is per-thread and does not
        propagate into pools) and resumes the caller's trace so the
        shard's cube builds nest under the scatter span.  Declared
        fault site ``shard.read``: a chaos plan can slow or kill any
        single shard's read here.
        """
        shard = self._shards[index]
        with resume_trace(trace, parent_span):
            trip(
                SITE_SHARD_READ,
                shard=index,
                n_shards=len(self._shards),
                cubes=len(keys),
            )
            with shard.pinned_to(snapshot):
                return shard.planes(keys)

    def _scatter(
        self, keys: Sequence[Tuple[str, ...]]
    ) -> List[List[RuleCube]]:
        """Scatter ``planes(keys)`` to every shard and gather in order.

        Failures gather deterministically: shards are awaited in shard
        order and the first infrastructure failure wraps into
        :class:`ShardReadError` naming its shard.  Domain errors
        (:class:`ValueError` / :class:`KeyError`, e.g. an unknown
        attribute) re-raise unchanged — every shard shares the schema,
        so these are request faults, not shard faults.
        """
        snapshot = self._capture()
        trace = current_trace()
        parent = current_span() if trace is not None else None
        with span(
            "shard.scatter", shards=len(self._shards), cubes=len(keys)
        ):
            futures: List[Future] = [
                self._pool.submit(
                    self._shard_planes, i, snap, keys, trace, parent
                )
                for i, snap in enumerate(snapshot.snapshots)
            ]
            gathered: List[List[RuleCube]] = []
            first_error: Optional[BaseException] = None
            error_shard = -1
            for i, future in enumerate(futures):
                try:
                    gathered.append(future.result())
                except (ValueError, KeyError):
                    raise
                except Exception as exc:
                    if first_error is None:
                        first_error = exc
                        error_shard = i
            if first_error is not None:
                raise ShardReadError(
                    f"shard {error_shard}/{len(self._shards)} read "
                    f"failed ({type(first_error).__name__}): "
                    f"{first_error}",
                    shard=error_shard,
                ) from first_error
        if self._metrics is not None:
            self._metrics.shard_fanout.observe(
                len(self._shards), store=self._metrics_store
            )
        return gathered

    def planes(self, keys: Sequence[Sequence[str]]) -> List[RuleCube]:
        """Bulk cube read, scatter-gathered and merged per key.

        Same contract as :meth:`CubeStore.planes`: cubes come back in
        canonical (sorted) axis order, one per requested key, all
        resolved against one snapshot vector.  Merged cubes are not
        cached here — each shard caches its own partial, the merge is
        the price of a sharded read (measured by
        ``repro_shard_merge_seconds`` and bounded by the bench), and
        the engine's result LRU already absorbs repeat requests.
        """
        key_tuples = [tuple(key) for key in keys]
        gathered = self._scatter(key_tuples)
        if len(self._shards) == 1:
            return gathered[0]
        started = time.perf_counter()
        with span(
            "shard.merge", shards=len(gathered), cubes=len(key_tuples)
        ):
            merged = [
                merge_cubes([per_shard[k] for per_shard in gathered])
                for k in range(len(key_tuples))
            ]
        if self._metrics is not None:
            self._metrics.shard_merge_seconds.observe(
                time.perf_counter() - started, store=self._metrics_store
            )
        return merged

    def cube(self, attributes: Sequence[str]) -> RuleCube:
        """The merged rule cube over ``attributes`` (+ class).

        Served through :meth:`planes`; a request in non-canonical axis
        order is transposed after the merge, matching
        :meth:`CubeStore.cube`.
        """
        requested = tuple(attributes)
        merged = self.planes([requested])[0]
        if requested != merged.names:
            merged = merged.transpose(requested)
        return merged

    def pair_cube(self, a: str, b: str) -> RuleCube:
        """The merged 3-dimensional cube over ``(a, b, class)``."""
        return self.cube((a, b))

    def single_cube(self, a: str) -> RuleCube:
        """The merged 2-dimensional cube over ``(a, class)``."""
        return self.cube((a,))

    def class_distribution_cube(self) -> RuleCube:
        """The merged class-only cube."""
        return self.cube(())

    # ------------------------------------------------------------------
    # Precompute
    # ------------------------------------------------------------------

    def precompute(
        self,
        include_pairs: bool = True,
        workers: Optional[int] = None,
    ) -> int:
        """Materialise every shard's cube set; returns cubes built.

        Shards precompute concurrently on the scatter pool — the
        off-line phase parallelises trivially across partitions.
        ``workers`` is the *per-shard* build fan-out, passed through.
        """
        futures = [
            self._pool.submit(
                shard.precompute, include_pairs, workers
            )
            for shard in self._shards
        ]
        return sum(f.result() for f in futures)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def _route(self, batch: Dataset) -> List[Tuple[int, Dataset]]:
        """Split a batch into (shard index, sub-batch) assignments.

        With a routing column, rows go to ``code % n_shards`` — the
        same function :func:`shard_by_column` used to cut the initial
        partition, so a value's counts stay on one shard.  Without
        one, the whole batch lands on the currently smallest shard
        (ties to the lowest index): deterministic, and keeps
        round-robin partitions balanced under steady ingest.
        """
        if self._shard_by is None:
            sizes = [s.dataset.n_rows for s in self._shards]
            target = sizes.index(min(sizes))
            return [(target, batch)]
        owners = batch.column(self._shard_by) % len(self._shards)
        return [
            (i, batch.select(owners == i))
            for i in range(len(self._shards))
            if bool((owners == i).any())
        ]

    def absorb(
        self,
        batch: Dataset,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        wal_seq: Optional[int] = None,
    ) -> int:
        """Fold a batch into the owning shard(s) without blocking reads.

        Routing picks the owner(s) (:meth:`_route`); each sub-batch is
        absorbed by its shard's own copy-on-write absorb, so only the
        owning shard's generation component bumps and readers of the
        other shards are never touched.  Readers of the owning shard
        see either its old snapshot or its new one — the single-store
        guarantee, per component.

        Returns the total number of cubes updated across shards.
        """
        if batch.n_rows == 0:
            # Validate against shard 0 for the usual schema errors,
            # then no-op exactly like the single store.
            self._shards[0]._validate_batch(batch)
            return 0
        with self._write_lock:
            assignments = self._route(batch)
            updated = 0
            for index, sub in assignments:
                updated += self._shards[index].absorb(
                    sub,
                    workers=workers,
                    executor=executor,
                    wal_seq=wal_seq,
                )
            return updated

    def install_shard_caches(
        self,
        shard_cubes: Sequence[Dict[Tuple[str, ...], RuleCube]],
        generations: Sequence[int],
        retain: object = None,
        datasets: Optional[Sequence[object]] = None,
    ) -> None:
        """Swap every shard to an externally published cube set.

        The sharded face of :meth:`CubeStore.install_cache`: one
        cube-dict + generation per shard, installed under the write
        lock so no routed absorb interleaves.  Each shard's swap is
        individually atomic; a ``pinned()`` reader sees a torn-free
        vector exactly as it would across a concurrent absorb.
        """
        if len(shard_cubes) != len(self._shards) or len(
            generations
        ) != len(self._shards):
            raise CubeError(
                f"expected {len(self._shards)} shard cube sets and "
                "generations"
            )
        if datasets is not None and len(datasets) != len(self._shards):
            raise CubeError("datasets must match the shard count")
        with self._write_lock:
            for i, shard in enumerate(self._shards):
                shard.install_cache(
                    shard_cubes[i],
                    generations[i],
                    retain=retain,
                    dataset=datasets[i] if datasets is not None else None,
                )

    def invalidate(self) -> None:
        """Drop every shard's cached cubes."""
        for shard in self._shards:
            shard.invalidate()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def backend_info(self) -> Dict[str, object]:
        """Aggregate counting-backend block across shards.

        One spill directory (or database, or append buffer) per shard;
        the aggregate reports the common kind, total rows, summed
        spill bytes and segments, and the shard count.  Heterogeneous
        shard kinds report ``kind: "mixed"`` (nothing constructs that
        today, but the report must not lie if someone does).
        """
        infos = [shard.backend_info() for shard in self._shards]
        kinds = {str(info.get("kind", "memory")) for info in infos}
        out: Dict[str, object] = {
            "kind": kinds.pop() if len(kinds) == 1 else "mixed",
            "rows": sum(int(info.get("rows", 0)) for info in infos),
            "shards": len(infos),
        }
        for summed in ("spill_bytes", "segments"):
            if any(summed in info for info in infos):
                out[summed] = sum(
                    int(info.get(summed, 0)) for info in infos
                )
        chunks = {
            info["chunk_rows"]
            for info in infos
            if "chunk_rows" in info
        }
        if len(chunks) == 1:
            out["chunk_rows"] = chunks.pop()
        return out

    def shard_info(self) -> List[Dict[str, object]]:
        """Per-shard breakdown for ``GET /cubes``: one dict per shard
        with its ``generation``, ``rows`` and ``cubes`` cached."""
        snapshot = self._capture()
        return [
            {
                "shard": i,
                "generation": snap.generation,
                "rows": snap.dataset.n_rows,
                "cubes": len(snap.cache),
            }
            for i, snap in enumerate(snapshot.snapshots)
        ]

    def __repr__(self) -> str:
        snapshot = self._capture()
        routing = (
            f"by {self._shard_by!r}" if self._shard_by else "row-balanced"
        )
        return (
            f"ShardedCubeStore({len(self._shards)} shards {routing}, "
            f"{snapshot.n_rows} rows, generation {snapshot.generation})"
        )

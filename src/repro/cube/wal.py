"""Write-ahead log for the cube store's ingest path.

The paper's cubes were rebuilt from a month of raw call logs, so a
crash between rebuilds lost nothing that could not be re-derived.  Our
serving tier absorbs `/ingest` batches incrementally (PR 5) — until
the next explicit archive persist those acknowledged rows exist only
in process memory.  This module closes that gap: every accepted batch
is appended to an on-disk log *before* :meth:`CubeStore.absorb`
mutates anything, and ``repro serve --wal-dir`` replays the log into
the store on startup before accepting traffic.

Record format
-------------

One record per absorbed batch, framed for torn-write detection::

    W <seq:12x> <length:8x> <crc:8x> <payload bytes>\\n

* The 33-byte ASCII header carries the record sequence number, the
  payload length and the CRC-32 of the payload bytes; fixed width so a
  frame scan never needs to parse JSON.
* The payload is one JSON object holding the batch in *coded* columnar
  form — ``int64`` category codes (``MISSING`` = ``-1``) and floats
  with ``NaN`` as ``null`` — plus a schema fingerprint so a log can
  never be replayed into a store with a different schema.
* The trailing newline keeps segments greppable as JSONL (offset the
  header) and gives the frame a terminator to validate.

A *torn* record — the file ends before the frame completes, the only
damage truncation can cause — is silently dropped by replay: the batch
it held was never acknowledged as durable.  A *complete* frame whose
checksum or structure is wrong is real corruption and raises
:class:`WalCorruptionError` instead of guessing.

Durability knobs
----------------

``fsync="always"``   fsync after every append — survives power loss.
``fsync="batch"``    flush after every append (default) — the record
                     is in the OS page cache before absorb
                     acknowledges, surviving process crashes.
``fsync="off"``      library buffering only; flushed on rotation and
                     close.  For bulk loads where the source data
                     still exists.

Segments rotate at ``segment_bytes``; :meth:`WriteAheadLog.compact`
deletes sealed segments fully covered by an archive persist (see
:func:`repro.cube.persist.save_cubes`'s ``wal_seq``).

Sharded stores get one WAL per shard (:func:`open_sharded_wals`):
each routed sub-batch is appended to its owner shard's own log by that
shard's :class:`CubeStore`, and replay restores each shard
independently — cross-shard ordering carries no information because
cube counts are additive under any partition.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from typing import (
    IO,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..dataset.schema import Schema
from ..dataset.table import Dataset
from ..testing.sites import SITE_WAL_APPEND, SITE_WAL_REPLAY, trip

__all__ = [
    "WalError",
    "WalCorruptionError",
    "WalRecord",
    "ReplayReport",
    "WriteAheadLog",
    "open_sharded_wals",
    "replay_into",
    "encode_batch",
    "decode_batch",
    "encode_record",
    "schema_fingerprint",
    "FSYNC_MODES",
]

#: Accepted fsync policies, weakest-to-strongest guarantees last.
FSYNC_MODES = ("off", "batch", "always")

_MAGIC = b"W "
_HEADER_LEN = 33  # b"W " + 12x seq + b" " + 8x len + b" " + 8x crc + b" "
_TERMINATOR = b"\n"
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


class WalError(RuntimeError):
    """Raised for write-ahead-log failures (I/O, misuse, bad replay)."""


class WalCorruptionError(WalError):
    """A complete record failed its checksum or structural validation.

    Distinct from a torn tail: truncation can only remove bytes from
    the end of the final segment, which replay tolerates.  A full-size
    frame that does not verify means the bytes were altered, and the
    log refuses to guess what they meant.
    """


class WalRecord(NamedTuple):
    """One decoded log record."""

    seq: int
    shard: Optional[int]
    batch: Dataset
    n_bytes: int


class ReplayReport:
    """Mutable tally filled in by :meth:`WriteAheadLog.replay`."""

    __slots__ = (
        "records",
        "rows",
        "skipped",
        "torn_bytes",
        "segments",
        "last_seq",
    )

    def __init__(self) -> None:
        self.records = 0
        self.rows = 0
        self.skipped = 0
        self.torn_bytes = 0
        self.segments = 0
        self.last_seq = 0

    def merge(self, other: "ReplayReport") -> None:
        self.records += other.records
        self.rows += other.rows
        self.skipped += other.skipped
        self.torn_bytes += other.torn_bytes
        self.segments += other.segments
        self.last_seq = max(self.last_seq, other.last_seq)

    def describe(self) -> Dict[str, int]:
        return {
            "records": self.records,
            "rows": self.rows,
            "skipped": self.skipped,
            "torn_bytes": self.torn_bytes,
            "segments": self.segments,
            "last_seq": self.last_seq,
        }

    def __repr__(self) -> str:
        return f"ReplayReport({self.describe()})"


# ----------------------------------------------------------------------
# Record encode / decode
# ----------------------------------------------------------------------


def schema_fingerprint(schema: Schema) -> int:
    """A 32-bit fingerprint of the schema's structure.

    Covers attribute names, domains and the class designation — the
    parts replay depends on to reinterpret coded columns.  Stored in
    every record so a log directory can never silently replay into a
    store built over different data.
    """
    spec = {
        "class": schema.class_name,
        "attrs": [
            [
                attr.name,
                list(attr.values) if attr.is_categorical else None,
            ]
            for attr in schema
        ],
    }
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(blob.encode("utf-8")) & 0xFFFFFFFF


def encode_batch(
    batch: Dataset, shard: Optional[int] = None
) -> Dict[str, object]:
    """Serialise a batch to the JSON payload structure.

    Categorical columns travel as their integer codes (``MISSING`` =
    ``-1``), continuous ones as floats with ``NaN`` mapped to ``null``
    — JSON has no NaN literal and ``float("nan")`` would emit the
    non-standard ``NaN`` token.
    """
    schema = batch.schema
    columns: Dict[str, List[object]] = {}
    for attr in schema:
        col = batch.column(attr.name)
        # ndarray.tolist() converts in C; the per-element NaN -> null
        # rewrite only runs when a NaN is actually present.
        values = col.tolist()
        if not attr.is_categorical and np.isnan(col).any():
            values = [None if v != v else v for v in values]
        columns[attr.name] = values
    return {
        "schema": schema_fingerprint(schema),
        "shard": shard,
        "rows": batch.n_rows,
        "columns": columns,
    }


def decode_batch(
    schema: Schema, payload: Dict[str, object]
) -> Tuple[Dataset, Optional[int]]:
    """Rebuild the batch a payload holds; inverse of :func:`encode_batch`."""
    recorded = payload.get("schema")
    expected = schema_fingerprint(schema)
    if recorded != expected:
        raise WalError(
            f"record schema fingerprint {recorded!r} does not match "
            f"the store's schema ({expected}); this log belongs to a "
            "different store"
        )
    raw_columns = payload.get("columns")
    if not isinstance(raw_columns, dict):
        raise WalCorruptionError("record payload has no columns object")
    columns: Dict[str, np.ndarray] = {}
    for attr in schema:
        try:
            raw = raw_columns[attr.name]
        except KeyError:
            raise WalCorruptionError(
                f"record payload is missing column {attr.name!r}"
            ) from None
        if attr.is_categorical:
            columns[attr.name] = np.asarray(raw, dtype=np.int64)
        else:
            columns[attr.name] = np.asarray(
                [float("nan") if v is None else float(v) for v in raw],
                dtype=np.float64,
            )
    batch = Dataset.from_columns(schema, columns)
    if batch.n_rows != payload.get("rows"):
        raise WalCorruptionError(
            "record row count does not match its columns"
        )
    shard = payload.get("shard")
    if shard is not None and not isinstance(shard, int):
        raise WalCorruptionError("record shard tag must be an integer")
    return batch, shard


def encode_record(seq: int, payload: bytes) -> bytes:
    """Frame a payload: fixed-width header, payload, newline."""
    if seq < 0 or seq > 0xFFFFFFFFFFFF:
        raise WalError(f"sequence number {seq} out of range")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    header = b"%s%012x %08x %08x " % (_MAGIC, seq, len(payload), crc)
    assert len(header) == _HEADER_LEN
    return header + payload + _TERMINATOR


class _Frame(NamedTuple):
    seq: int
    payload: bytes
    end_offset: int


def _read_frames(
    handle: IO[bytes], path: str
) -> Tuple[List[_Frame], int]:
    """Scan one segment; return its complete frames and torn-tail size.

    Only frame structure is verified here (header shape, length, CRC,
    terminator) — payload JSON is decoded lazily by replay.  A file
    that simply ends mid-frame yields the frames before the tear plus
    the count of dangling bytes; anything else raises
    :class:`WalCorruptionError` naming the offset.
    """
    frames: List[_Frame] = []
    offset = 0
    while True:
        header = handle.read(_HEADER_LEN)
        if not header:
            return frames, 0
        if len(header) < _HEADER_LEN:
            return frames, len(header)
        if header[:2] != _MAGIC or header[-1:] != b" ":
            raise WalCorruptionError(
                f"{path}: bad record header at offset {offset}"
            )
        try:
            seq = int(header[2:14], 16)
            length = int(header[15:23], 16)
            crc = int(header[24:32], 16)
        except ValueError:
            raise WalCorruptionError(
                f"{path}: unparsable record header at offset {offset}"
            ) from None
        body = handle.read(length + 1)
        if len(body) < length + 1:
            return frames, _HEADER_LEN + len(body)
        payload, terminator = body[:length], body[length:]
        if terminator != _TERMINATOR:
            raise WalCorruptionError(
                f"{path}: record at offset {offset} has no terminator"
            )
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise WalCorruptionError(
                f"{path}: checksum mismatch for record seq {seq} at "
                f"offset {offset}"
            )
        offset += _HEADER_LEN + length + 1
        frames.append(_Frame(seq, payload, offset))


class _Segment(NamedTuple):
    path: str
    index: int
    first_seq: int  # 0 when the segment holds no complete record
    last_seq: int


class WriteAheadLog:
    """Append-only, segment-rotated batch log for one store (or shard).

    Thread safety: :meth:`append` is internally locked, though in
    practice the owning store's write lock already serialises callers.
    :meth:`replay` must run before the first append (the startup
    sequence) or while appends are quiescent.
    """

    #: Default rotation threshold (16 MB of frames per segment).
    DEFAULT_SEGMENT_BYTES = 16 * 1024 * 1024

    def __init__(
        self,
        directory: str,
        fsync: str = "batch",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if fsync not in FSYNC_MODES:
            raise WalError(
                f"fsync must be one of {FSYNC_MODES}, got {fsync!r}"
            )
        if segment_bytes < 1024:
            raise WalError("segment_bytes must be at least 1024")
        self._directory = os.path.abspath(directory)
        os.makedirs(self._directory, exist_ok=True)
        self._fsync = fsync
        self._segment_bytes = segment_bytes
        self._lock = threading.Lock()
        self._handle: Optional[IO[bytes]] = None
        self._handle_size = 0
        self._closed = False
        self._metrics: Optional[object] = None
        self._metric_labels: Dict[str, str] = {}
        self._segments: List[_Segment] = []
        self._next_seq = 1
        self._scan_existing()

    # -- startup scan ---------------------------------------------------

    def _segment_path(self, index: int) -> str:
        return os.path.join(
            self._directory, f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"
        )

    def _scan_existing(self) -> None:
        """Index the segments already on disk and find the next seq.

        Only frames are scanned (no JSON decode); the torn tail of the
        *final* segment, if any, is truncated away here so appends
        never land after garbage.  A torn frame in a non-final segment
        means bytes vanished from the middle of the log — corruption.
        """
        indices = []
        for name in os.listdir(self._directory):
            if not (
                name.startswith(_SEGMENT_PREFIX)
                and name.endswith(_SEGMENT_SUFFIX)
            ):
                continue
            stem = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
            try:
                indices.append(int(stem))
            except ValueError:
                raise WalError(
                    f"unrecognised file in WAL directory: {name!r}"
                ) from None
        indices.sort()
        last_seq = 0
        for position, index in enumerate(indices):
            path = self._segment_path(index)
            with open(path, "rb") as handle:
                frames, torn = _read_frames(handle, path)
            if torn and position != len(indices) - 1:
                raise WalCorruptionError(
                    f"{path}: torn record in a non-final segment"
                )
            for frame in frames:
                if frame.seq <= last_seq:
                    raise WalCorruptionError(
                        f"{path}: sequence number {frame.seq} is not "
                        f"monotonic (previous {last_seq})"
                    )
                last_seq = frame.seq
            if torn:
                valid_end = frames[-1].end_offset if frames else 0
                with open(path, "r+b") as handle:
                    handle.truncate(valid_end)
            self._segments.append(
                _Segment(
                    path,
                    index,
                    frames[0].seq if frames else 0,
                    frames[-1].seq if frames else 0,
                )
            )
        self._next_seq = last_seq + 1

    # -- introspection --------------------------------------------------

    @property
    def directory(self) -> str:
        """The directory segments live in."""
        return self._directory

    @property
    def fsync_mode(self) -> str:
        """The configured durability policy."""
        return self._fsync

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._next_seq - 1

    def segment_count(self) -> int:
        """Number of segment files currently on disk."""
        with self._lock:
            return len(self._segments)

    def size_bytes(self) -> int:
        """Total bytes across all segments."""
        with self._lock:
            paths = [seg.path for seg in self._segments]
        total = 0
        for path in paths:
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def describe(self) -> Dict[str, object]:
        """Summary used by ``GET /cubes`` and replay logging."""
        return {
            "directory": self._directory,
            "fsync": self._fsync,
            "segments": self.segment_count(),
            "bytes": self.size_bytes(),
            "last_seq": self.last_seq,
        }

    # -- metrics --------------------------------------------------------

    def bind_metrics(
        self, metrics: object, store_name: str, shard: Optional[int] = None
    ) -> None:
        """Attach a :class:`~repro.service.metrics.ServiceMetrics` panel.

        Duck-typed like the stores' ``bind_metrics`` so the cube layer
        stays importable without the service package.
        """
        self._metrics = metrics
        labels = {"store": store_name}
        if shard is not None:
            labels["shard"] = str(shard)
        self._metric_labels = labels

    def _record_append(self, n_bytes: int, seconds: float) -> None:
        metrics = self._metrics
        if metrics is None:
            return
        labels = self._metric_labels
        metrics.wal_appends.inc(**labels)
        metrics.wal_append_bytes.inc(n_bytes, **labels)
        metrics.wal_append_seconds.observe(seconds, **labels)
        if self._fsync == "always":
            metrics.wal_fsyncs.inc(**labels)

    # -- append ---------------------------------------------------------

    def _open_segment(self) -> IO[bytes]:
        if self._segments:
            tail = self._segments[-1]
            size = (
                os.path.getsize(tail.path)
                if os.path.exists(tail.path)
                else 0
            )
            if size < self._segment_bytes:
                handle = open(tail.path, "ab")
                self._handle_size = size
                return handle
            next_index = tail.index + 1
        else:
            next_index = 1
        path = self._segment_path(next_index)
        handle = open(path, "ab")
        self._handle_size = 0
        self._segments.append(_Segment(path, next_index, 0, 0))
        return handle

    def _rotate_locked(self) -> None:
        assert self._handle is not None
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        tail = self._segments[-1]
        next_index = tail.index + 1
        path = self._segment_path(next_index)
        self._handle = open(path, "ab")
        self._handle_size = 0
        self._segments.append(_Segment(path, next_index, 0, 0))

    def append(self, batch: Dataset, shard: Optional[int] = None) -> int:
        """Durably record one accepted batch; returns its sequence number.

        Called by the store *inside* its write lock, before any
        in-memory mutation: if this raises, absorb aborts and the old
        snapshot keeps serving — the batch is neither logged nor
        counted.  This is a declared fault site (``wal.append``), the
        stand-in for a full disk or failing device.
        """
        import time

        trip(SITE_WAL_APPEND, rows=batch.n_rows, shard=shard)
        with self._lock:
            if self._closed:
                raise WalError("write-ahead log is closed")
            started = time.perf_counter()
            seq = self._next_seq
            payload = json.dumps(
                encode_batch(batch, shard),
                ensure_ascii=False,
                separators=(",", ":"),
            ).encode("utf-8")
            frame = encode_record(seq, payload)
            if self._handle is None:
                self._handle = self._open_segment()
            try:
                self._handle.write(frame)
                if self._fsync == "always":
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                elif self._fsync == "batch":
                    self._handle.flush()
            except OSError as exc:
                raise WalError(f"WAL append failed: {exc}") from exc
            self._handle_size += len(frame)
            tail = self._segments[-1]
            self._segments[-1] = _Segment(
                tail.path,
                tail.index,
                tail.first_seq or seq,
                seq,
            )
            self._next_seq = seq + 1
            if self._handle_size >= self._segment_bytes:
                self._rotate_locked()
            elapsed = time.perf_counter() - started
        self._record_append(len(frame), elapsed)
        return seq

    def sync(self) -> None:
        """Force an fsync of the open segment (any policy)."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush and close the open segment; further appends fail."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._handle.close()
                self._handle = None
            self._closed = True

    # -- replay ---------------------------------------------------------

    def replay(
        self,
        schema: Schema,
        start_after: int = 0,
        report: Optional[ReplayReport] = None,
    ) -> Iterator[WalRecord]:
        """Yield every durable record with ``seq > start_after`` in order.

        ``start_after`` is the archive's recorded ``wal_seq`` on a warm
        start — records the persisted cubes already contain are
        skipped, never double-counted.  A torn final record is dropped
        (its batch was never durable); its size lands in
        ``report.torn_bytes``.  Trips the ``wal.replay`` fault site
        once per yielded record so chaos runs can wound recovery
        itself.
        """
        if report is None:
            report = ReplayReport()
        with self._lock:
            segments = list(self._segments)
        last_seq = 0
        for position, segment in enumerate(segments):
            try:
                with open(segment.path, "rb") as handle:
                    frames, torn = _read_frames(handle, segment.path)
            except FileNotFoundError:
                continue
            report.segments += 1
            if torn:
                if position != len(segments) - 1:
                    raise WalCorruptionError(
                        f"{segment.path}: torn record in a non-final "
                        "segment"
                    )
                report.torn_bytes += torn
            for frame in frames:
                if frame.seq <= last_seq:
                    raise WalCorruptionError(
                        f"{segment.path}: sequence number {frame.seq} "
                        f"is not monotonic (previous {last_seq})"
                    )
                last_seq = frame.seq
                report.last_seq = frame.seq
                if frame.seq <= start_after:
                    report.skipped += 1
                    continue
                trip(
                    SITE_WAL_REPLAY,
                    seq=frame.seq,
                    segment=segment.index,
                )
                try:
                    payload = json.loads(frame.payload.decode("utf-8"))
                except ValueError:
                    raise WalCorruptionError(
                        f"{segment.path}: record seq {frame.seq} holds "
                        "unparsable JSON"
                    ) from None
                batch, shard = decode_batch(schema, payload)
                report.records += 1
                report.rows += batch.n_rows
                yield WalRecord(
                    frame.seq, shard, batch, len(frame.payload)
                )

    # -- compaction -----------------------------------------------------

    def compact(self, through_seq: int) -> int:
        """Delete sealed segments whose records are all ``<= through_seq``.

        Called after an archive persist recorded ``wal_seq =
        through_seq``: those records are now redundant with the
        archive.  The open (tail) segment is never deleted, so the log
        always has somewhere to append.  Returns the number of
        segments removed.
        """
        removed = 0
        with self._lock:
            keep: List[_Segment] = []
            for position, segment in enumerate(self._segments):
                is_tail = position == len(self._segments) - 1
                sealed_and_covered = (
                    not is_tail
                    and segment.last_seq != 0
                    and segment.last_seq <= through_seq
                )
                if sealed_and_covered:
                    try:
                        os.remove(segment.path)
                    except OSError as exc:
                        raise WalError(
                            f"compaction failed to remove "
                            f"{segment.path}: {exc}"
                        ) from exc
                    removed += 1
                else:
                    keep.append(segment)
            self._segments = keep
        return removed


# ----------------------------------------------------------------------
# Sharded stores: one log per shard
# ----------------------------------------------------------------------


def open_sharded_wals(
    directory: str,
    n_shards: int,
    fsync: str = "batch",
    segment_bytes: int = WriteAheadLog.DEFAULT_SEGMENT_BYTES,
) -> List[WriteAheadLog]:
    """One :class:`WriteAheadLog` per shard under ``directory``.

    Shard ``k`` logs to ``directory/shard-kk/``; an existing layout is
    validated against ``n_shards`` so a 4-shard store can never
    silently adopt (and partially replay) an 8-shard log directory.
    """
    if n_shards < 1:
        raise WalError("n_shards must be positive")
    root = os.path.abspath(directory)
    os.makedirs(root, exist_ok=True)
    existing = sorted(
        name
        for name in os.listdir(root)
        if name.startswith("shard-")
        and os.path.isdir(os.path.join(root, name))
    )
    expected = [f"shard-{k:02d}" for k in range(n_shards)]
    if existing and existing != expected:
        raise WalError(
            f"WAL directory {root} holds shard logs {existing}, but "
            f"this store has {n_shards} shards ({expected})"
        )
    return [
        WriteAheadLog(
            os.path.join(root, name),
            fsync=fsync,
            segment_bytes=segment_bytes,
        )
        for name in expected
    ]


def replay_into(
    store: object,
    wal: object,
    start_after: int = 0,
) -> ReplayReport:
    """Replay a log (or per-shard logs) into a store before traffic.

    ``store`` is duck-typed: anything with ``shards`` (the sharded
    store) gets each shard's own log replayed into that shard;
    otherwise every record is absorbed into the store directly.  Must
    run *before* :meth:`bind_wal` — replayed batches would otherwise
    be re-appended to the very log they came from.
    """
    logs = getattr(wal, "logs", None)
    if logs is not None:
        shards = getattr(store, "shards", None)
        if shards is None or len(shards) != len(logs):
            raise WalError(
                "per-shard logs require a sharded store with a "
                "matching shard count"
            )
        total = ReplayReport()
        for shard_store, shard_log in zip(shards, logs):
            total.merge(
                replay_into(shard_store, shard_log, start_after)
            )
        return total
    report = ReplayReport()
    schema = store.dataset.schema  # type: ignore[attr-defined]
    for record in wal.replay(  # type: ignore[attr-defined]
        schema, start_after=start_after, report=report
    ):
        # Hand the record's own sequence number to absorb: a store
        # whose rows are durable (spill/sqlite backends) stamps it
        # into the row storage, so the *next* restart's replay skips
        # records the rows already contain instead of appending them
        # twice.
        store.absorb(  # type: ignore[attr-defined]
            record.batch, wal_seq=record.seq
        )
    return report


class ShardedWal:
    """Per-shard logs plus the aggregate surface the service layer sees.

    Holds one :class:`WriteAheadLog` per shard (``logs``);
    :meth:`ShardedCubeStore.bind_wal` hands each inner store its own
    log, so the routed sub-batch append happens exactly where the
    single-store path appends — inside :meth:`CubeStore.absorb`, under
    that shard's write lock, before any mutation.
    """

    def __init__(self, logs: Sequence[WriteAheadLog]) -> None:
        if not logs:
            raise WalError("a sharded WAL needs at least one log")
        self.logs: Tuple[WriteAheadLog, ...] = tuple(logs)

    @classmethod
    def open(
        cls,
        directory: str,
        n_shards: int,
        fsync: str = "batch",
        segment_bytes: int = WriteAheadLog.DEFAULT_SEGMENT_BYTES,
    ) -> "ShardedWal":
        return cls(
            open_sharded_wals(
                directory, n_shards, fsync=fsync,
                segment_bytes=segment_bytes,
            )
        )

    @property
    def fsync_mode(self) -> str:
        return self.logs[0].fsync_mode

    @property
    def last_seq(self) -> int:
        return max(log.last_seq for log in self.logs)

    def segment_count(self) -> int:
        return sum(log.segment_count() for log in self.logs)

    def size_bytes(self) -> int:
        return sum(log.size_bytes() for log in self.logs)

    def bind_metrics(self, metrics: object, store_name: str) -> None:
        for k, log in enumerate(self.logs):
            log.bind_metrics(metrics, store_name, shard=k)

    def describe(self) -> Dict[str, object]:
        return {
            "fsync": self.fsync_mode,
            "segments": self.segment_count(),
            "bytes": self.size_bytes(),
            "last_seq": self.last_seq,
            "shards": [log.describe() for log in self.logs],
        }

    def sync(self) -> None:
        for log in self.logs:
            log.sync()

    def close(self) -> None:
        for log in self.logs:
            log.close()

    def compact(self, through_seq: int) -> int:
        return sum(log.compact(through_seq) for log in self.logs)

"""OLAP operations on rule cubes.

"The operations on rule cubes are basically the same as those in OLAP,
but without multiple levels of aggregations" (Section III.B): the
paper's cubes have no dimension hierarchies, so roll-up simply
marginalises an attribute away and drill-down re-introduces one.

All operations are pure: they return new :class:`RuleCube` objects.

* :func:`slice_cube` — fix one attribute to a single value, dropping
  the axis.  Slicing the (PhoneModel, A, C) cube at ``PhoneModel=ph1``
  yields the (A, C) cube of the ph1 sub-population — exactly the
  sub-population cube the comparator consumes.
* :func:`dice_cube` — restrict one attribute to a subset of its values,
  keeping the axis (with a reduced domain).
* :func:`rollup` — sum an attribute out (one aggregation level only).
* :func:`drill_down` — add an attribute back; since the finer counts
  cannot be recovered from the coarse cube, this recounts from the
  data, mirroring how the deployed system materialises cubes on demand.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..dataset.schema import Attribute
from ..dataset.table import Dataset
from .builder import build_cube
from .rulecube import CubeError, RuleCube

__all__ = ["slice_cube", "dice_cube", "rollup", "drill_down"]


def slice_cube(cube: RuleCube, attribute: str, value: str) -> RuleCube:
    """Fix ``attribute = value``; the axis disappears from the result.

    The resulting cube counts only the records of the selected
    sub-population.
    """
    axis = cube.axis_of(attribute)
    attr = cube.attribute(attribute)
    code = attr.code_of(value)
    counts = np.take(cube.counts, code, axis=axis)
    attrs = [a for a in cube.attributes if a.name != attribute]
    return RuleCube(attrs, cube.class_attribute, counts)


def dice_cube(
    cube: RuleCube, attribute: str, values: Sequence[str]
) -> RuleCube:
    """Restrict ``attribute`` to ``values``; the axis stays (smaller).

    The paper's comparison workflow starts with "a slice operation by
    selecting two values, i.e., ph1 and ph2" — in OLAP terms a dice to
    the two-value domain; both views are provided.
    """
    values = list(values)
    if not values:
        raise CubeError("dice requires at least one value")
    if len(set(values)) != len(values):
        raise CubeError(f"duplicate values in dice: {values}")
    axis = cube.axis_of(attribute)
    attr = cube.attribute(attribute)
    codes = [attr.code_of(v) for v in values]
    counts = np.take(cube.counts, codes, axis=axis)
    new_attr = Attribute(attr.name, values=values)
    attrs = [
        new_attr if a.name == attribute else a for a in cube.attributes
    ]
    return RuleCube(attrs, cube.class_attribute, counts)


def rollup(cube: RuleCube, attribute: str) -> RuleCube:
    """Aggregate ``attribute`` away by summing over its axis."""
    axis = cube.axis_of(attribute)
    counts = cube.counts.sum(axis=axis)
    attrs = [a for a in cube.attributes if a.name != attribute]
    return RuleCube(attrs, cube.class_attribute, counts)


def drill_down(
    cube: RuleCube, dataset: Dataset, attribute: str
) -> RuleCube:
    """Add ``attribute`` as a new leading axis by recounting from data.

    ``dataset`` must be the data the cube was built from; the result has
    dimensions ``(attribute,) + cube.names + (class,)`` and rolls back
    up to ``cube`` exactly (an invariant the test suite checks).
    """
    if attribute in cube.names:
        raise CubeError(
            f"attribute {attribute!r} is already a cube dimension"
        )
    if attribute == cube.class_attribute.name:
        raise CubeError("cannot drill down into the class attribute")
    return build_cube(dataset, (attribute,) + cube.names)

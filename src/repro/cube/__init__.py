"""Rule cubes and OLAP operations — the knowledge-space substrate.

A rule cube is a data cube whose cells are class-association-rule
support counts (paper, Section III.B).  This package provides the cube
object, vectorised construction from columnar data, the OLAP operations
(slice / dice / roll-up / drill-down, no hierarchies), and the cube
store that materialises all 2-D and 3-D cubes the deployed system keeps.
"""

from .rulecube import CubeError, RuleCube
from .builder import (
    PairCubeBuilder,
    build_all_2d,
    build_all_3d,
    build_cube,
    class_cube,
    minimal_code_dtype,
)
from .backend import (
    BackendDataset,
    CountingBackend,
    InMemoryBackend,
    SpillBackend,
    SqliteBackend,
)
from .olap import dice_cube, drill_down, rollup, slice_cube
from .store import CubeStore
from .sharded import (
    ShardReadError,
    ShardedCubeStore,
    merge_count_tensors,
    merge_cubes,
    shard_by_column,
    shard_rows,
)
from .persist import (
    archive_generation,
    archive_wal_seq,
    load_cubes,
    load_store_cubes,
    save_cubes,
)
from .shm import (
    ShmError,
    SnapshotPublisher,
    SnapshotSubscriber,
    list_segments,
)
from .wal import (
    ReplayReport,
    ShardedWal,
    WalCorruptionError,
    WalError,
    WriteAheadLog,
    open_sharded_wals,
    replay_into,
)

__all__ = [
    "RuleCube",
    "CubeError",
    "build_cube",
    "build_all_2d",
    "build_all_3d",
    "class_cube",
    "PairCubeBuilder",
    "minimal_code_dtype",
    "CountingBackend",
    "InMemoryBackend",
    "SpillBackend",
    "SqliteBackend",
    "BackendDataset",
    "slice_cube",
    "dice_cube",
    "rollup",
    "drill_down",
    "CubeStore",
    "ShardedCubeStore",
    "ShardReadError",
    "merge_count_tensors",
    "merge_cubes",
    "shard_rows",
    "shard_by_column",
    "save_cubes",
    "load_cubes",
    "load_store_cubes",
    "archive_wal_seq",
    "archive_generation",
    "ShmError",
    "SnapshotPublisher",
    "SnapshotSubscriber",
    "list_segments",
    "WriteAheadLog",
    "ShardedWal",
    "WalError",
    "WalCorruptionError",
    "ReplayReport",
    "open_sharded_wals",
    "replay_into",
]

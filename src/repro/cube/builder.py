"""Vectorised rule-cube construction from columnar data.

Cube generation is the system's off-line phase ("the generation is done
off-line, e.g., in the evening", Section V.C).  A cube over attributes
``(A_1, ..., A_p)`` plus the class is a ``p+1``-dimensional histogram of
the joint value codes, which numpy computes in one ``bincount`` pass
over a flattened mixed-radix code:

    ``flat = ((a_1 * |A_2| + a_2) * ... ) * |C| + c``

Rows with a missing value in any participating column are excluded from
that cube (they are still counted in cubes not involving the missing
attribute).

:func:`build_all_2d` and :func:`build_all_3d` reproduce the deployed
system's precomputation: "In our current implementation, we store all
3-dimensional rule cubes.  For each cube, one of the dimensions is
always the class attribute."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dataset.schema import Attribute
from ..dataset.table import Dataset
from .rulecube import CubeError, RuleCube

__all__ = ["build_cube", "build_all_2d", "build_all_3d", "class_cube"]


def build_cube(dataset: Dataset, attributes: Sequence[str]) -> RuleCube:
    """Build the rule cube over ``attributes`` (+ the class axis).

    Parameters
    ----------
    dataset:
        Fully categorical data set (discretise first).
    attributes:
        Condition attribute names, in the desired axis order.  May be
        empty, yielding the plain class-distribution cube.
    """
    schema = dataset.schema
    class_attr = schema.class_attribute
    attrs: List[Attribute] = []
    for name in attributes:
        attr = schema[name]
        if name == schema.class_name:
            raise CubeError(
                "the class attribute is always the final cube axis; do "
                "not list it as a condition attribute"
            )
        if not attr.is_categorical:
            raise CubeError(
                f"cube attribute {name!r} is continuous; discretise first"
            )
        attrs.append(attr)

    dims = tuple(a.arity for a in attrs) + (class_attr.arity,)
    columns = [dataset.column(a.name) for a in attrs]
    columns.append(dataset.class_codes)

    if dataset.n_rows == 0:
        return RuleCube(attrs, class_attr, np.zeros(dims, dtype=np.int64))

    mask = np.ones(dataset.n_rows, dtype=bool)
    for col in columns:
        mask &= col >= 0

    flat = np.zeros(dataset.n_rows, dtype=np.int64)
    for col, dim in zip(columns, dims):
        flat *= dim
        flat += col
    size = int(np.prod(dims))
    counts = np.bincount(flat[mask], minlength=size)
    return RuleCube(attrs, class_attr, counts.reshape(dims))


def class_cube(dataset: Dataset) -> RuleCube:
    """The 1-dimensional cube holding only the class distribution."""
    return build_cube(dataset, ())


def build_all_2d(
    dataset: Dataset, attributes: Optional[Sequence[str]] = None
) -> Dict[str, RuleCube]:
    """All 2-dimensional cubes (one attribute x class).

    These back the overall visualization mode (Fig. 5): "this screen
    simply shows all the 2-dimensional rule cubes.  Each rule cube is
    formed by the class attribute and one other attribute."
    """
    schema = dataset.schema
    if attributes is None:
        attributes = [a.name for a in schema.condition_attributes]
    return {name: build_cube(dataset, (name,)) for name in attributes}


def build_all_3d(
    dataset: Dataset, attributes: Optional[Sequence[str]] = None
) -> Dict[Tuple[str, str], RuleCube]:
    """All 3-dimensional cubes (two attributes x class).

    One cube per unordered attribute pair, keyed by the pair in the
    given attribute order.  The number of cubes is quadratic in the
    attribute count — the source of the non-linear growth in the
    paper's Fig. 10.
    """
    schema = dataset.schema
    if attributes is None:
        attributes = [a.name for a in schema.condition_attributes]
    cubes: Dict[Tuple[str, str], RuleCube] = {}
    for i, a in enumerate(attributes):
        for b in attributes[i + 1:]:
            cubes[(a, b)] = build_cube(dataset, (a, b))
    return cubes

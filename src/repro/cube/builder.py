"""Vectorised rule-cube construction from columnar data.

Cube generation is the system's off-line phase ("the generation is done
off-line, e.g., in the evening", Section V.C).  A cube over attributes
``(A_1, ..., A_p)`` plus the class is a ``p+1``-dimensional histogram of
the joint value codes, which numpy computes in one ``bincount`` pass
over a flattened mixed-radix code:

    ``flat = ((a_1 * |A_2| + a_2) * ... ) * |C| + c``

Rows with a missing value in any participating column are excluded from
that cube (they are still counted in cubes not involving the missing
attribute).

:func:`build_all_2d` and :func:`build_all_3d` reproduce the deployed
system's precomputation: "In our current implementation, we store all
3-dimensional rule cubes.  For each cube, one of the dimensions is
always the class attribute."
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dataset.schema import Attribute
from ..dataset.table import Dataset
from .rulecube import CubeError, RuleCube

__all__ = [
    "build_cube",
    "build_all_2d",
    "build_all_3d",
    "class_cube",
    "PairCubeBuilder",
    "minimal_code_dtype",
]


def minimal_code_dtype(max_code: int) -> np.dtype:
    """Smallest *signed* integer dtype holding ``[-1, max_code]``.

    Signed on purpose: ``MISSING`` is −1, and mixing unsigned arrays
    with signed int64 promotes to float64 in numpy, which would
    silently turn exact counts into rounded ones.  Callers widen to
    int64 only inside the mixed-radix combine.
    """
    for dtype in (np.int8, np.int16, np.int32):
        if max_code <= np.iinfo(dtype).max:
            return np.dtype(dtype)
    return np.dtype(np.int64)


def build_cube(dataset: Dataset, attributes: Sequence[str]) -> RuleCube:
    """Build the rule cube over ``attributes`` (+ the class axis).

    Parameters
    ----------
    dataset:
        Fully categorical data set (discretise first).
    attributes:
        Condition attribute names, in the desired axis order.  May be
        empty, yielding the plain class-distribution cube.
    """
    schema = dataset.schema
    class_attr = schema.class_attribute
    attrs: List[Attribute] = []
    for name in attributes:
        attr = schema[name]
        if name == schema.class_name:
            raise CubeError(
                "the class attribute is always the final cube axis; do "
                "not list it as a condition attribute"
            )
        if not attr.is_categorical:
            raise CubeError(
                f"cube attribute {name!r} is continuous; discretise first"
            )
        attrs.append(attr)

    dims = tuple(a.arity for a in attrs) + (class_attr.arity,)
    columns = [dataset.column(a.name) for a in attrs]
    columns.append(dataset.class_codes)

    if dataset.n_rows == 0:
        return RuleCube(attrs, class_attr, np.zeros(dims, dtype=np.int64))

    mask = np.ones(dataset.n_rows, dtype=bool)
    for col in columns:
        mask &= col >= 0

    flat = np.zeros(dataset.n_rows, dtype=np.int64)
    for col, dim in zip(columns, dims):
        flat *= dim
        flat += col
    size = int(np.prod(dims))
    counts = np.bincount(flat[mask], minlength=size)
    return RuleCube(attrs, class_attr, counts.reshape(dims))


def class_cube(dataset: Dataset) -> RuleCube:
    """The 1-dimensional cube holding only the class distribution."""
    return build_cube(dataset, ())


class PairCubeBuilder:
    """Shared-state builder for the O(m²) pair-cube sweep.

    :func:`build_cube` recomputes, for every cube, the per-column
    validity masks and the mixed-radix flattening from scratch — fine
    for one lazy build, wasteful across the ``m(m-1)/2`` pairs of the
    off-line generation phase (Fig. 10), where each column participates
    in ``m-1`` cubes.

    This builder hoists the per-attribute work out of the pair loop and
    replaces the validity mask + fancy-index compress with *overflow
    bins*.  For each attribute it precomputes, once,

    * ``safe`` — the value codes with every row that is invalid for
      this attribute's cubes (missing value or missing class) redirected
      to the extra code ``arity``;
    * ``tail = safe * n_classes + class_safe`` — the pre-multiplied
      low-order digits of the mixed-radix code;
    * ``head = safe * M`` with the shared radix
      ``M = (max_arity + 1) * n_classes`` (built lazily on first use as
      the leading attribute).

    A pair cube is then one addition and one ``bincount`` over
    ``head_a + tail_b``; invalid rows land in the overflow rows/columns
    of the widened ``(arity_a + 1, max_arity + 1, n_classes)`` histogram
    and are sliced away, never filtered row-by-row.

    For every surviving cell the flat code equals
    ``(a·|B| + b)·|C| + c`` regrouped as ``a·M + (b·|C| + c)`` —
    identical int64 values, so the counts are *bit-equal* to
    :func:`build_cube`'s (the test suite asserts exact equality
    cube-by-cube).
    """

    def __init__(
        self, dataset: Dataset, attributes: Sequence[str]
    ) -> None:
        schema = dataset.schema
        self._dataset = dataset
        self._class_attr = schema.class_attribute
        self._n_classes = schema.class_attribute.arity
        self._attrs: Dict[str, Attribute] = {}
        self._safe: Dict[str, np.ndarray] = {}
        self._tail: Dict[str, np.ndarray] = {}
        self._head: Dict[str, np.ndarray] = {}
        class_codes = dataset.class_codes
        class_valid = class_codes >= 0
        class_safe = np.where(class_valid, class_codes, 0)
        max_arity = 0
        for name in attributes:
            attr = schema[name]
            if name == schema.class_name:
                raise CubeError(
                    "the class attribute is always the final cube "
                    "axis; do not list it as a condition attribute"
                )
            if not attr.is_categorical:
                raise CubeError(
                    f"cube attribute {name!r} is continuous; "
                    "discretise first"
                )
            col = dataset.column(name)
            self._attrs[name] = attr
            # Resident in the minimal signed dtype holding the codes
            # plus the overflow code ``arity`` — int16 covers every
            # shipped schema, roughly halving builder memory at high
            # attribute counts.  The int64 intermediates below are
            # transient; only the narrow arrays survive __init__.
            safe_dtype = minimal_code_dtype(attr.arity)
            tail_dtype = minimal_code_dtype(
                (attr.arity + 1) * self._n_classes - 1
            )
            safe = np.where(
                (col >= 0) & class_valid, col, attr.arity
            )
            self._safe[name] = safe.astype(safe_dtype)
            self._tail[name] = (
                safe * self._n_classes + class_safe
            ).astype(tail_dtype)
            max_arity = max(max_arity, attr.arity)
        #: Shared trailing radix: room for any attribute's codes plus
        #: its overflow bin, so one pre-multiplied head per attribute
        #: serves every partner.
        self._radix = (max_arity + 1) * self._n_classes

    def _head_of(self, name: str) -> np.ndarray:
        """``safe * radix``, built on first use as the leading axis.

        This is where the narrow ``safe`` codes widen to int64: the
        pre-multiplied head can exceed the storage dtype, and the
        ``head + tail`` combine in :meth:`pair_cube` then promotes the
        narrow tail to int64 for free.

        Benign under concurrency: two threads may both compute it, the
        results are identical and dict assignment is atomic.
        """
        head = self._head.get(name)
        if head is None:
            head = self._safe[name].astype(np.int64) * self._radix
            self._head[name] = head
        return head

    def single_cube(self, name: str) -> RuleCube:
        """The 2-D cube over ``(name, class)`` from the shared codes."""
        attr = self._attrs[name]
        dims = (attr.arity, self._n_classes)
        if self._dataset.n_rows == 0:
            counts = np.zeros(dims, dtype=np.int64)
        else:
            widened = np.bincount(
                self._tail[name],
                minlength=(attr.arity + 1) * self._n_classes,
            ).reshape(attr.arity + 1, self._n_classes)
            counts = np.ascontiguousarray(widened[: attr.arity])
        return RuleCube([attr], self._class_attr, counts)

    def pair_cube(self, a: str, b: str) -> RuleCube:
        """The 3-D cube over ``(a, b, class)`` from the shared codes."""
        attr_a, attr_b = self._attrs[a], self._attrs[b]
        dims = (attr_a.arity, attr_b.arity, self._n_classes)
        if self._dataset.n_rows == 0:
            counts = np.zeros(dims, dtype=np.int64)
        else:
            flat = self._head_of(a) + self._tail[b]
            widened = np.bincount(
                flat, minlength=(attr_a.arity + 1) * self._radix
            ).reshape(attr_a.arity + 1, -1, self._n_classes)
            counts = np.ascontiguousarray(
                widened[: attr_a.arity, : attr_b.arity]
            )
        return RuleCube([attr_a, attr_b], self._class_attr, counts)

    def build(self, key: Sequence[str]) -> RuleCube:
        """Dispatch on key length (0-, 1- or 2-attribute cubes)."""
        key = tuple(key)
        if len(key) == 0:
            return build_cube(self._dataset, ())
        if len(key) == 1:
            return self.single_cube(key[0])
        if len(key) == 2:
            return self.pair_cube(key[0], key[1])
        return build_cube(self._dataset, key)

    def build_many(
        self,
        keys: Sequence[Sequence[str]],
        executor: Optional["Executor"] = None,
    ) -> List[RuleCube]:
        """Build one cube per key, optionally fanned over an executor.

        The store's absorb path uses this for the single-pass delta
        sweep: the per-attribute ``safe``/``tail`` arrays are counted
        once in :meth:`__init__`, then every cached cube's delta is a
        single add + ``bincount`` here — thread-safe because the shared
        state is read-only after construction (the lazy ``head`` fill
        is idempotent).
        """
        canonical = [tuple(k) for k in keys]
        if executor is None:
            return [self.build(k) for k in canonical]
        return list(executor.map(self.build, canonical))


def build_all_2d(
    dataset: Dataset, attributes: Optional[Sequence[str]] = None
) -> Dict[str, RuleCube]:
    """All 2-dimensional cubes (one attribute x class).

    These back the overall visualization mode (Fig. 5): "this screen
    simply shows all the 2-dimensional rule cubes.  Each rule cube is
    formed by the class attribute and one other attribute."
    """
    schema = dataset.schema
    if attributes is None:
        attributes = [a.name for a in schema.condition_attributes]
    return {name: build_cube(dataset, (name,)) for name in attributes}


def build_all_3d(
    dataset: Dataset, attributes: Optional[Sequence[str]] = None
) -> Dict[Tuple[str, str], RuleCube]:
    """All 3-dimensional cubes (two attributes x class).

    One cube per unordered attribute pair, keyed by the pair in the
    given attribute order.  The number of cubes is quadratic in the
    attribute count — the source of the non-linear growth in the
    paper's Fig. 10.
    """
    schema = dataset.schema
    if attributes is None:
        attributes = [a.name for a in schema.condition_attributes]
    builder = PairCubeBuilder(dataset, attributes)
    cubes: Dict[Tuple[str, str], RuleCube] = {}
    for i, a in enumerate(attributes):
        for b in attributes[i + 1:]:
            cubes[(a, b)] = builder.pair_cube(a, b)
    return cubes

"""Interactive text shell over an Opportunity Map.

The deployed system is an interactive GUI; the reproduction's terminal
equivalent is a small ``cmd``-based explorer.  Every GUI primitive has
a command:

=============  ======================================================
``overview``   the Fig. 5 overall matrix (optionally: attribute names)
``detail``     the Fig. 6 detailed view: ``detail PhoneModel [class]``
``trends``     GI trends for one attribute
``impressions``the combined GI digest
``compare``    the automated comparison:
               ``compare PhoneModel ph1 ph2 dropped``
``vsrest``     one-vs-rest: ``vsrest PhoneModel ph2 dropped``
``pairs``      fleet sweep: ``pairs PhoneModel dropped``
``explain``    drill the last comparison one level deeper
``log``        the session's operation audit trail
``quit``       leave
=============  ======================================================

The shell is fully scriptable (``cmdqueue`` / piped stdin), which is
how the test suite drives it.
"""

from __future__ import annotations

import cmd
from typing import IO, Optional

from ..core.results import ComparisonResult
from ..viz.pairmatrix import render_pair_matrix
from .opportunity_map import OpportunityMap
from .session import Session

__all__ = ["OpportunityShell"]


class OpportunityShell(cmd.Cmd):
    """A line-oriented explorer over one :class:`OpportunityMap`."""

    intro = (
        "Opportunity Map shell — type 'help' for commands, "
        "'quit' to leave."
    )
    prompt = "om> "

    def __init__(
        self,
        workbench: OpportunityMap,
        stdout: Optional[IO[str]] = None,
    ) -> None:
        super().__init__(stdout=stdout)
        self.session = Session(workbench)
        self.last_result: Optional[ComparisonResult] = None

    # -- helpers ----------------------------------------------------------

    def _say(self, text: str) -> None:
        self.stdout.write(text + "\n")

    def _fail(self, message: str) -> None:
        self._say(f"error: {message}")

    # -- commands ---------------------------------------------------------

    def do_overview(self, arg: str) -> None:
        """overview [attr ...] — the Fig. 5 overall matrix."""
        attributes = arg.split() or None
        try:
            self._say(self.session.overall_view(attributes=attributes))
        except Exception as exc:  # noqa: BLE001 - surfaced to the user
            self._fail(str(exc))

    def do_detail(self, arg: str) -> None:
        """detail <attribute> [class] — the Fig. 6 detailed view."""
        parts = arg.split()
        if not parts:
            self._fail("usage: detail <attribute> [class]")
            return
        class_label = parts[1] if len(parts) > 1 else None
        try:
            self._say(
                self.session.detailed_view(
                    parts[0], class_label=class_label
                )
            )
        except Exception as exc:  # noqa: BLE001
            self._fail(str(exc))

    def do_trends(self, arg: str) -> None:
        """trends <attribute> — per-class unit trends."""
        if not arg.strip():
            self._fail("usage: trends <attribute>")
            return
        try:
            trends = self.session.trends(arg.strip())
        except Exception as exc:  # noqa: BLE001
            self._fail(str(exc))
            return
        for label, trend in trends.items():
            self._say(
                f"  {trend.arrow} {label}: {trend.kind} "
                f"(spread {trend.spread * 100:.2f} points)"
            )

    def do_impressions(self, arg: str) -> None:
        """impressions — the combined GI digest."""
        try:
            self._say(
                self.session.workbench.general_impressions().to_text()
            )
        except Exception as exc:  # noqa: BLE001
            self._fail(str(exc))

    def do_compare(self, arg: str) -> None:
        """compare <attr> <valueA> <valueB> <class> — the comparator."""
        parts = arg.split()
        if len(parts) != 4:
            self._fail(
                "usage: compare <attribute> <valueA> <valueB> <class>"
            )
            return
        try:
            result = self.session.compare(*parts)
        except Exception as exc:  # noqa: BLE001
            self._fail(str(exc))
            return
        self.last_result = result
        self._say(
            self.session.workbench.comparison_view(result, top=3)
        )

    def do_vsrest(self, arg: str) -> None:
        """vsrest <attr> <value> <class> — one-vs-rest comparison."""
        parts = arg.split()
        if len(parts) != 3:
            self._fail("usage: vsrest <attribute> <value> <class>")
            return
        try:
            result = self.session.workbench.compare_vs_rest(*parts)
        except Exception as exc:  # noqa: BLE001
            self._fail(str(exc))
            return
        self.last_result = result
        self._say(result.summary())

    def do_pairs(self, arg: str) -> None:
        """pairs <attr> <class> — fleet-wide pairwise sweep."""
        parts = arg.split()
        if len(parts) != 2:
            self._fail("usage: pairs <attribute> <class>")
            return
        try:
            report = self.session.workbench.compare_all_pairs(*parts)
        except Exception as exc:  # noqa: BLE001
            self._fail(str(exc))
            return
        self._say(render_pair_matrix(report, show_explainers=False))

    def do_explain(self, arg: str) -> None:
        """explain — restricted-mining drill into the last compare."""
        if self.last_result is None:
            self._fail("run a compare (or vsrest) first")
            return
        try:
            rules = self.session.workbench.explain(
                self.last_result, top=5
            )
        except Exception as exc:  # noqa: BLE001
            self._fail(str(exc))
            return
        if not rules:
            self._say("no refinements above the thresholds")
            return
        for rule in rules:
            self._say(f"  {rule}")

    def do_log(self, arg: str) -> None:
        """log — the session's operation audit trail."""
        self._say(self.session.report())

    def do_quit(self, arg: str) -> bool:
        """quit — leave the shell."""
        return True

    do_EOF = do_quit

    def emptyline(self) -> None:  # don't repeat the last command
        pass

    def default(self, line: str) -> None:
        self._fail(f"unknown command {line.split()[0]!r}; try 'help'")

"""The Opportunity Map workbench: the six-component pipeline facade and
the operation-logging analysis session."""

from .opportunity_map import OpportunityMap
from .session import Operation, Session
from .shell import OpportunityShell

__all__ = ["OpportunityMap", "Session", "Operation", "OpportunityShell"]

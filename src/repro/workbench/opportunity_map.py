"""The Opportunity Map facade.

"The Opportunity Map system consists of six main components: a
discretizer, a class association rule (CAR) generator, a general
impression (GI) miner, a comparator and a visualizer" (Section V.A,
with the rule-cube layer between the CAR generator and the consumers).
This class wires the reproduction's subsystems into that pipeline and
is the primary entry point of the library:

>>> from repro import OpportunityMap, paper_example_config
>>> from repro.synth import generate_call_logs
>>> om = OpportunityMap(generate_call_logs(paper_example_config(5000)))
>>> result = om.compare("PhoneModel", "ph1", "ph2", "dropped")
>>> result.ranked[0].attribute
'TimeOfCall'
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.comparator import Comparator, ComparatorError
from ..core.pairwise import PairwiseReport, compare_all_pairs
from ..core.property_attrs import DEFAULT_TAU
from ..core.results import ComparisonResult
from ..cube.rulecube import RuleCube
from ..cube.store import CubeStore
from ..dataset.discretize import discretize_dataset
from ..dataset.sampling import unbalanced_sample
from ..dataset.table import Dataset
from ..gi.exceptions import CellException, find_exceptions
from ..gi.influence import rank_influential
from ..gi.report import Findings, general_impressions
from ..gi.trends import Trend, cube_trends
from ..rules.car import ClassAssociationRule, Condition
from ..rules.miner import mine_cars, restricted_mine
from ..viz.detailed import render_comparison, render_detailed
from ..viz.overall import render_overall

__all__ = ["OpportunityMap"]


class OpportunityMap:
    """End-to-end analysis workbench over one classification data set.

    Parameters
    ----------
    dataset:
        The input data.  Continuous attributes are discretised on
        construction (the system's first pipeline stage).
    discretize_method / discretize_bins / manual_cuts:
        Passed to :func:`repro.dataset.discretize_dataset`; ``manual``
        reproduces the deployed system's manual option.
    sample_majority_ratio:
        When set, the paper's unbalanced sampling runs first: the
        majority class is down-sampled to ``ratio x`` the minority
        total before any mining.
    attributes:
        The condition attributes to manage (the analysts' curated
        ~200-of-600 subset); defaults to all.
    confidence_level / property_tau / weight_by_count /
    interval_method / comparison_measure:
        Comparator settings (see :class:`repro.core.Comparator`);
        ``comparison_measure`` names the default interestingness
        measure (``repro.core.measure_names()`` lists the registry).
    seed:
        Seed for the sampling stage.
    """

    def __init__(
        self,
        dataset: Dataset,
        discretize_method: str = "mdl",
        discretize_bins: int = 5,
        manual_cuts: Optional[Dict[str, Sequence[float]]] = None,
        sample_majority_ratio: Optional[float] = None,
        attributes: Optional[Sequence[str]] = None,
        confidence_level: Optional[float] = 0.95,
        property_tau: Optional[float] = DEFAULT_TAU,
        weight_by_count: bool = True,
        interval_method: str = "wald",
        comparison_measure: str = "paper",
        seed: Optional[int] = 0,
    ) -> None:
        self._raw = dataset
        if sample_majority_ratio is not None:
            dataset = unbalanced_sample(
                dataset, ratio=sample_majority_ratio, seed=seed
            )
        has_continuous = any(
            a.is_continuous for a in dataset.schema.condition_attributes
        )
        if has_continuous:
            dataset = discretize_dataset(
                dataset,
                method=discretize_method,
                n_bins=discretize_bins,
                manual_cuts=manual_cuts,
            )
        self._dataset = dataset
        self._store = CubeStore(dataset, attributes=attributes)
        self._comparator = Comparator(
            self._store,
            confidence_level=confidence_level,
            property_tau=property_tau,
            weight_by_count=weight_by_count,
            interval_method=interval_method,
            measure=comparison_measure,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def dataset(self) -> Dataset:
        """The analysed (sampled + discretised) data set."""
        return self._dataset

    @property
    def raw_dataset(self) -> Dataset:
        """The data set as supplied, before sampling/discretisation."""
        return self._raw

    @property
    def store(self) -> CubeStore:
        """The cube store (for direct OLAP work)."""
        return self._store

    @property
    def comparator(self) -> Comparator:
        """The configured comparator."""
        return self._comparator

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------

    def precompute_cubes(
        self,
        include_pairs: bool = True,
        workers: Optional[int] = None,
    ) -> int:
        """The off-line cube generation phase; returns cubes built.

        ``workers`` fans the pair-cube sweep across a thread pool with
        shared column codes (see
        :meth:`repro.cube.CubeStore.precompute`)."""
        return self._store.precompute(
            include_pairs=include_pairs, workers=workers
        )

    def cube(self, attributes: Sequence[str]) -> RuleCube:
        """Any rule cube over the managed attributes."""
        return self._store.cube(attributes)

    def mine_rules(
        self,
        min_support: float = 0.01,
        min_confidence: float = 0.0,
        max_length: int = 2,
    ) -> List[ClassAssociationRule]:
        """Threshold-based CAR mining over the analysed data."""
        return mine_cars(
            self._dataset,
            min_support=min_support,
            min_confidence=min_confidence,
            max_length=max_length,
            attributes=list(self._store.attributes),
        )

    def mine_longer_rules(
        self,
        fixed: Sequence[Condition],
        min_support: float = 0.01,
        min_confidence: float = 0.0,
        extra_length: int = 2,
    ) -> List[ClassAssociationRule]:
        """The system's restricted mining for rules beyond 2 conditions."""
        return restricted_mine(
            self._dataset,
            fixed,
            min_support=min_support,
            min_confidence=min_confidence,
            extra_length=extra_length,
        )

    # ------------------------------------------------------------------
    # General impressions
    # ------------------------------------------------------------------

    def trends(self, attribute: str) -> Dict[str, Trend]:
        """Per-class unit trends of one attribute (Fig. 5 arrows)."""
        return cube_trends(self._store.single_cube(attribute))

    def exceptions(
        self, attributes: Sequence[str], threshold: float = 3.0,
        top: int = 10
    ) -> List[CellException]:
        """Outlier cells of the cube over ``attributes``."""
        return find_exceptions(
            self._store.cube(tuple(attributes)),
            threshold=threshold,
            top=top,
        )

    def influential_attributes(
        self, measure: str = "cramers_v"
    ) -> List[Tuple[str, float]]:
        """Attributes ranked by influence on the class."""
        return rank_influential(self._store, measure=measure)

    def general_impressions(self, **kwargs) -> Findings:
        """The combined GI digest (influence + trends + exceptions).

        See :func:`repro.gi.general_impressions` for the knobs.
        """
        return general_impressions(self._store, **kwargs)

    # ------------------------------------------------------------------
    # The comparator (the paper's contribution)
    # ------------------------------------------------------------------

    def compare(
        self,
        pivot_attribute: str,
        value_a: str,
        value_b: str,
        target_class: str,
        attributes: Optional[Sequence[str]] = None,
        measure: Optional[str] = None,
    ) -> ComparisonResult:
        """Automated comparison of two sub-populations.

        See :meth:`repro.core.Comparator.compare`.
        """
        return self._comparator.compare(
            pivot_attribute, value_a, value_b, target_class,
            attributes=attributes, measure=measure,
        )

    def compare_vs_rest(
        self,
        pivot_attribute: str,
        value: str,
        target_class: str,
        attributes: Optional[Sequence[str]] = None,
        measure: Optional[str] = None,
    ) -> ComparisonResult:
        """One-vs-rest screening comparison.

        See :meth:`repro.core.Comparator.compare_vs_rest`.
        """
        return self._comparator.compare_vs_rest(
            pivot_attribute, value, target_class,
            attributes=attributes, measure=measure,
        )

    def compare_all_pairs(
        self,
        pivot_attribute: str,
        target_class: str,
        values: Optional[Sequence[str]] = None,
        min_gap: float = 0.0,
    ) -> PairwiseReport:
        """Fleet-wide sweep: compare every pair of pivot values.

        See :func:`repro.core.compare_all_pairs`.
        """
        return compare_all_pairs(
            self._comparator,
            pivot_attribute,
            target_class,
            values=values,
            min_gap=min_gap,
        )

    def explain(
        self,
        result: ComparisonResult,
        attribute: Optional[str] = None,
        value: Optional[str] = None,
        min_support: float = 0.001,
        min_confidence: float = 0.0,
        extra_length: int = 1,
        top: int = 10,
    ) -> List[ClassAssociationRule]:
        """Drill one level below a comparison finding.

        Given a comparison result (e.g. "TimeOfCall distinguishes ph1
        from ph2, worst at morning"), run the system's *restricted
        mining* inside the bad sub-population at the flagged value —
        fixing ``pivot = value_bad`` and ``attribute = value`` — to
        surface the longer rules that refine the finding (e.g. which
        network load makes ph2's mornings worst).

        Parameters
        ----------
        result:
            The comparison to drill into.
        attribute / value:
            The finding to refine; defaults to the top-ranked
            attribute and its highest-contribution value.
        top:
            Keep the ``top`` refinements of the target class, by
            confidence.
        """
        if attribute is None:
            if not result.ranked:
                raise ComparatorError(
                    "the comparison ranked no attributes to explain"
                )
            entry = result.ranked[0]
            attribute = entry.attribute
        else:
            entry = result.attribute(attribute)
        if value is None:
            best = entry.top_values(1)
            if not best or best[0].contribution <= 0:
                raise ComparatorError(
                    f"attribute {attribute!r} has no contributing "
                    "value to explain"
                )
            value = best[0].value

        fixed = [
            Condition(result.pivot_attribute, result.value_bad),
            Condition(attribute, value),
        ]
        rules = restricted_mine(
            self._dataset,
            fixed,
            min_support=min_support,
            min_confidence=min_confidence,
            extra_length=extra_length,
        )
        refinements = [
            r for r in rules
            if r.class_label == result.target_class
            and r.length > len(fixed)
        ]
        refinements.sort(
            key=lambda r: (-r.confidence, -r.support, r.key())
        )
        return refinements[:top]

    # ------------------------------------------------------------------
    # Visualization
    # ------------------------------------------------------------------

    def overall_view(
        self,
        attributes: Optional[Sequence[str]] = None,
        max_values: int = 8,
        scale_per_class: bool = True,
    ) -> str:
        """The Fig. 5 overall matrix as text."""
        return render_overall(
            self._store,
            attributes=attributes,
            max_values=max_values,
            scale_per_class=scale_per_class,
        )

    def detailed_view(
        self, attribute: str, class_label: Optional[str] = None
    ) -> str:
        """The Fig. 6 detailed view of one attribute."""
        return render_detailed(
            self._store.single_cube(attribute), class_label=class_label
        )

    def comparison_view(
        self, result: ComparisonResult, top: int = 3
    ) -> str:
        """The Fig. 7/8 rendering of a comparison result."""
        return render_comparison(result, top=top)

    def __repr__(self) -> str:
        return (
            f"OpportunityMap({self._dataset.n_rows} records, "
            f"{len(self._store.attributes)} attributes)"
        )

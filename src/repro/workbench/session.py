"""Scriptable analysis sessions.

The paper's key usability observation is that "finding a piece of
actionable knowledge typically involves a large number of operations
and extensive visual inspection".  The :class:`Session` records every
operation an analyst performs against an :class:`OpportunityMap`, so a
workflow — like the Section V.B case study — can be measured (how many
primitive operations did it take?), replayed, and exported as an audit
trail.  The operation counter is what the examples use to contrast the
manual attribute-by-attribute workflow with the single automated
comparison.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

from .opportunity_map import OpportunityMap

__all__ = ["Operation", "Session"]


class Operation(NamedTuple):
    """One logged analyst operation."""

    kind: str  #: e.g. "overall_view", "slice", "compare"
    detail: Dict[str, Any]
    elapsed_seconds: float


class Session:
    """An operation-logging wrapper around :class:`OpportunityMap`."""

    def __init__(self, workbench: OpportunityMap) -> None:
        self._wb = workbench
        self._log: List[Operation] = []

    @property
    def workbench(self) -> OpportunityMap:
        """The wrapped workbench."""
        return self._wb

    @property
    def log(self) -> Tuple[Operation, ...]:
        """All operations performed so far, in order."""
        return tuple(self._log)

    @property
    def n_operations(self) -> int:
        """Number of primitive operations performed."""
        return len(self._log)

    def _record(self, kind: str, detail: Dict[str, Any],
                started: float) -> None:
        self._log.append(
            Operation(kind, detail, time.perf_counter() - started)
        )

    # ------------------------------------------------------------------
    # Logged operations (one per primitive the GUI offers)
    # ------------------------------------------------------------------

    def overall_view(self, **kwargs: Any) -> str:
        """Open the overall view (logged)."""
        started = time.perf_counter()
        out = self._wb.overall_view(**kwargs)
        self._record("overall_view", dict(kwargs), started)
        return out

    def detailed_view(self, attribute: str,
                      class_label: Optional[str] = None) -> str:
        """Open a detailed view (logged)."""
        started = time.perf_counter()
        out = self._wb.detailed_view(attribute, class_label=class_label)
        self._record(
            "detailed_view",
            {"attribute": attribute, "class": class_label},
            started,
        )
        return out

    def slice(self, attributes: Sequence[str], at: Dict[str, str]):
        """Slice a cube (logged); returns the sliced cube."""
        from ..cube.olap import slice_cube

        started = time.perf_counter()
        cube = self._wb.cube(tuple(attributes))
        for name, value in at.items():
            cube = slice_cube(cube, name, value)
        self._record(
            "slice", {"attributes": list(attributes), "at": dict(at)},
            started,
        )
        return cube

    def dice(self, attributes: Sequence[str], attribute: str,
             values: Sequence[str]):
        """Dice a cube (logged); returns the diced cube."""
        from ..cube.olap import dice_cube

        started = time.perf_counter()
        cube = dice_cube(
            self._wb.cube(tuple(attributes)), attribute, values
        )
        self._record(
            "dice",
            {
                "attributes": list(attributes),
                "attribute": attribute,
                "values": list(values),
            },
            started,
        )
        return cube

    def trends(self, attribute: str):
        """Run the GI trend miner (logged)."""
        started = time.perf_counter()
        out = self._wb.trends(attribute)
        self._record("trends", {"attribute": attribute}, started)
        return out

    def compare(
        self,
        pivot_attribute: str,
        value_a: str,
        value_b: str,
        target_class: str,
        **kwargs: Any,
    ):
        """Run the automated comparator (logged, one operation)."""
        started = time.perf_counter()
        out = self._wb.compare(
            pivot_attribute, value_a, value_b, target_class, **kwargs
        )
        self._record(
            "compare",
            {
                "pivot": pivot_attribute,
                "values": (value_a, value_b),
                "class": target_class,
            },
            started,
        )
        return out

    # ------------------------------------------------------------------

    def manual_comparison_workflow(
        self,
        pivot_attribute: str,
        value_a: str,
        value_b: str,
        target_class: str,
        attributes: Optional[Sequence[str]] = None,
    ) -> int:
        """Simulate the pre-comparator manual workflow.

        What the third author "literally went through" for one data
        set: for *every* candidate attribute, slice the 3-D cube at the
        two pivot values and open the comparison visual.  Returns the
        number of primitive operations it took (2 slices + 1 view per
        attribute), for contrast with ``compare``'s single operation.
        """
        if attributes is None:
            attributes = [
                a
                for a in self._wb.store.attributes
                if a != pivot_attribute
            ]
        before = self.n_operations
        for name in attributes:
            self.slice((pivot_attribute, name),
                       {pivot_attribute: value_a})
            self.slice((pivot_attribute, name),
                       {pivot_attribute: value_b})
            self.detailed_view(name, class_label=target_class)
        return self.n_operations - before

    def report(self) -> str:
        """Human-readable audit trail of the session."""
        lines = [f"Session with {self.n_operations} operations:"]
        for i, op in enumerate(self._log, start=1):
            lines.append(
                f"  {i:3d}. {op.kind}  {op.detail}  "
                f"({op.elapsed_seconds * 1000:.1f} ms)"
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable audit trail (one JSON document).

        Each operation becomes ``{kind, detail, elapsed_ms}``; details
        are coerced to JSON-safe types.  Suitable for diffing sessions
        or feeding usage analytics — the kind of instrumentation the
        paper's authors used informally ("from our observations and
        monthly interactions with our users").
        """

        def safe(value: Any) -> Any:
            if isinstance(value, (str, int, float, bool)) or value is None:
                return value
            if isinstance(value, dict):
                return {str(k): safe(v) for k, v in value.items()}
            if isinstance(value, (list, tuple)):
                return [safe(v) for v in value]
            return repr(value)

        payload = [
            {
                "kind": op.kind,
                "detail": safe(op.detail),
                "elapsed_ms": round(op.elapsed_seconds * 1000, 3),
            }
            for op in self._log
        ]
        return json.dumps(
            {"operations": payload, "count": len(payload)}, indent=2
        )

"""Tabular data substrate: schemas, columnar tables, discretisation,
sampling and IO.

This package is the foundation every other subsystem builds on.  It
models the paper's input — "like any classification data set" with
categorical and continuous attributes and a categorical class — as an
immutable columnar :class:`Dataset` over an explicit :class:`Schema`.
"""

from .schema import (
    CATEGORICAL,
    CONTINUOUS,
    MISSING,
    Attribute,
    Schema,
    SchemaError,
)
from .table import AppendBuffer, Dataset, DatasetError
from .discretize import (
    ChiMergeDiscretizer,
    Discretizer,
    EntropyMDLDiscretizer,
    EqualFrequencyDiscretizer,
    EqualWidthDiscretizer,
    ManualDiscretizer,
    discretize_dataset,
    interval_labels,
)
from .sampling import random_sample, stratified_sample, unbalanced_sample
from .io import infer_schema, iter_csv_chunks, read_csv, write_csv
from .arff import read_arff, write_arff
from .ops import drop_attributes, merge_values, reduce_arity

__all__ = [
    "CATEGORICAL",
    "CONTINUOUS",
    "MISSING",
    "Attribute",
    "Schema",
    "SchemaError",
    "AppendBuffer",
    "Dataset",
    "DatasetError",
    "Discretizer",
    "EqualWidthDiscretizer",
    "EqualFrequencyDiscretizer",
    "EntropyMDLDiscretizer",
    "ChiMergeDiscretizer",
    "ManualDiscretizer",
    "discretize_dataset",
    "interval_labels",
    "unbalanced_sample",
    "random_sample",
    "stratified_sample",
    "infer_schema",
    "iter_csv_chunks",
    "read_csv",
    "write_csv",
    "read_arff",
    "write_arff",
    "reduce_arity",
    "merge_values",
    "drop_attributes",
]

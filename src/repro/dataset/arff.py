"""ARFF (Attribute-Relation File Format) reader and writer.

ARFF is the lingua franca of classification data sets (Weka's native
format) and maps 1:1 onto this library's schema model: ``@attribute``
declarations are :class:`Attribute` objects (nominal -> categorical,
``numeric``/``real`` -> continuous), ``?`` is the missing marker, and
``@data`` rows are records.

Supported subset (deliberately — the full grammar includes sparse rows
and date types that classification data rarely uses):

* ``@relation <name>``
* ``@attribute <name> {v1, v2, ...}`` — nominal
* ``@attribute <name> numeric|real|integer`` — continuous
* ``%`` comments, blank lines, ``?`` missing values
* dense ``@data`` rows, with optional single-quoted tokens

The class attribute defaults to the *last* declared attribute (the
Weka convention) but can be named explicitly.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from .schema import Attribute, CATEGORICAL, CONTINUOUS, Schema
from .table import Dataset, DatasetError

__all__ = ["read_arff", "write_arff"]

PathLike = Union[str, Path]

_NUMERIC_TYPES = {"numeric", "real", "integer"}


def _strip_quotes(token: str) -> str:
    token = token.strip()
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "'\"":
        return token[1:-1]
    return token


def _split_csvish(line: str) -> List[str]:
    """Split a data row on commas, honouring single/double quotes."""
    fields: List[str] = []
    current: List[str] = []
    quote: Optional[str] = None
    for ch in line:
        if quote:
            if ch == quote:
                quote = None
            else:
                current.append(ch)
        elif ch in "'\"":
            quote = ch
        elif ch == ",":
            fields.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    fields.append("".join(current).strip())
    return fields


def _parse_attribute_line(line: str) -> Attribute:
    body = line[len("@attribute"):].strip()
    if not body:
        raise DatasetError("malformed @attribute line (empty)")
    # Name may be quoted and may contain spaces when quoted.
    if body[0] in "'\"":
        quote = body[0]
        end = body.find(quote, 1)
        if end < 0:
            raise DatasetError(f"unterminated quote in: {line!r}")
        name = body[1:end]
        rest = body[end + 1:].strip()
    else:
        parts = body.split(None, 1)
        if len(parts) != 2:
            raise DatasetError(f"malformed @attribute line: {line!r}")
        name, rest = parts[0], parts[1].strip()

    if rest.startswith("{"):
        if not rest.endswith("}"):
            raise DatasetError(
                f"unterminated nominal domain in: {line!r}"
            )
        values = [
            _strip_quotes(v) for v in _split_csvish(rest[1:-1])
        ]
        values = [v for v in values if v != ""]
        if not values:
            raise DatasetError(
                f"empty nominal domain in: {line!r}"
            )
        return Attribute(name, CATEGORICAL, values)
    type_name = rest.split()[0].lower()
    if type_name in _NUMERIC_TYPES:
        return Attribute(name, CONTINUOUS)
    raise DatasetError(
        f"unsupported ARFF attribute type {type_name!r} for "
        f"{name!r} (supported: nominal, numeric/real/integer)"
    )


def read_arff(
    path: PathLike, class_attribute: Optional[str] = None
) -> Dataset:
    """Load an ARFF file into a :class:`Dataset`.

    Parameters
    ----------
    path:
        The ``.arff`` file.
    class_attribute:
        Name of the class attribute; defaults to the last declared
        attribute (the Weka convention).  It must be nominal.
    """
    path = Path(path)
    attributes: List[Attribute] = []
    rows: List[Tuple[str, ...]] = []
    in_data = False

    with path.open() as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("%"):
                continue
            lowered = line.lower()
            if in_data:
                fields = [_strip_quotes(f) for f in _split_csvish(line)]
                if len(fields) != len(attributes):
                    raise DatasetError(
                        f"data row has {len(fields)} fields; expected "
                        f"{len(attributes)}"
                    )
                rows.append(tuple(fields))
            elif lowered.startswith("@relation"):
                continue
            elif lowered.startswith("@attribute"):
                attributes.append(_parse_attribute_line(line))
            elif lowered.startswith("@data"):
                if not attributes:
                    raise DatasetError(
                        "@data before any @attribute declarations"
                    )
                in_data = True
            else:
                raise DatasetError(f"unrecognised ARFF line: {line!r}")

    if not in_data:
        raise DatasetError(f"{path} has no @data section")
    if class_attribute is None:
        class_attribute = attributes[-1].name
    schema = Schema(attributes, class_attribute=class_attribute)
    return Dataset.from_rows(schema, rows, missing_token="?")


def _quote_if_needed(token: str) -> str:
    if any(ch in token for ch in " ,{}%'\""):
        escaped = token.replace("'", "\\'")
        return f"'{escaped}'"
    return token


def write_arff(
    dataset: Dataset, path: PathLike, relation: str = "repro"
) -> None:
    """Write a data set as a dense ARFF file."""
    path = Path(path)
    schema = dataset.schema
    lines = [f"@relation {_quote_if_needed(relation)}", ""]
    for attr in schema:
        if attr.is_categorical:
            domain = ", ".join(
                _quote_if_needed(v) for v in attr.values
            )
            lines.append(
                f"@attribute {_quote_if_needed(attr.name)} "
                f"{{{domain}}}"
            )
        else:
            lines.append(
                f"@attribute {_quote_if_needed(attr.name)} numeric"
            )
    lines.append("")
    lines.append("@data")
    for row in dataset.iter_rows():
        fields = []
        for cell in row:
            if cell is None:
                fields.append("?")
            elif isinstance(cell, float):
                fields.append(f"{cell:g}")
            else:
                fields.append(_quote_if_needed(str(cell)))
        lines.append(",".join(fields))
    path.write_text("\n".join(lines) + "\n")

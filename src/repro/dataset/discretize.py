"""Discretisation of continuous attributes into intervals.

Class-association-rule mining "requires every attribute in the data to be
discrete ... there are many existing discretization algorithms that can be
used to discretize each continuous attribute into intervals" (paper,
Section III.A).  The deployed Opportunity Map system ships a discretiser
component with a manual option (Section V.A).

This module provides the standard algorithms:

* :class:`EqualWidthDiscretizer` — fixed number of equal-width bins.
* :class:`EqualFrequencyDiscretizer` — quantile bins with roughly equal
  populations.
* :class:`EntropyMDLDiscretizer` — the supervised Fayyad & Irani (1993)
  recursive entropy minimisation with the MDL stopping criterion, the
  classic choice for classification data.
* :class:`ChiMergeDiscretizer` — Kerber's (1992) bottom-up chi-square
  merging, the other classic supervised method.
* :class:`ManualDiscretizer` — user-supplied cut points, mirroring the
  "manual discretization option" of the deployed system.

All discretisers share the same protocol: :meth:`fit` learns cut points
from a data set, :meth:`transform` rewrites the continuous column as a
categorical interval column, and :func:`discretize_dataset` applies a
discretiser to every continuous attribute at once.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .table import Dataset, DatasetError

__all__ = [
    "Discretizer",
    "EqualWidthDiscretizer",
    "EqualFrequencyDiscretizer",
    "EntropyMDLDiscretizer",
    "ChiMergeDiscretizer",
    "ManualDiscretizer",
    "interval_labels",
    "discretize_dataset",
]


def interval_labels(cuts: Sequence[float]) -> Tuple[str, ...]:
    """Human-readable labels for the intervals induced by ``cuts``.

    ``k`` cut points induce ``k + 1`` intervals:
    ``(-inf, c0]``, ``(c0, c1]``, ..., ``(c_{k-1}, +inf)``.

    >>> interval_labels([10.0, 20.0])
    ('(-inf, 10]', '(10, 20]', '(20, +inf)')
    """

    def fmt(x: float) -> str:
        if float(x).is_integer():
            return str(int(x))
        return f"{x:g}"

    cuts = list(cuts)
    if not cuts:
        return ("(-inf, +inf)",)
    labels = [f"(-inf, {fmt(cuts[0])}]"]
    for lo, hi in zip(cuts, cuts[1:]):
        labels.append(f"({fmt(lo)}, {fmt(hi)}]")
    labels.append(f"({fmt(cuts[-1])}, +inf)")
    return tuple(labels)


class Discretizer:
    """Base class for all discretisers.

    Subclasses implement :meth:`find_cuts`; fitting, coding and data-set
    rewriting are shared.  After :meth:`fit`, :attr:`cuts_` maps attribute
    names to their learned ascending cut points.
    """

    def __init__(self) -> None:
        self.cuts_: Dict[str, Tuple[float, ...]] = {}

    # -- subclass hook --------------------------------------------------

    def find_cuts(
        self, values: np.ndarray, class_codes: np.ndarray, n_classes: int
    ) -> Tuple[float, ...]:
        """Return ascending cut points for one column (no NaNs)."""
        raise NotImplementedError

    # -- shared machinery -----------------------------------------------

    def fit(
        self, dataset: Dataset, attributes: Optional[Sequence[str]] = None
    ) -> "Discretizer":
        """Learn cut points for the given (default: all) continuous
        attributes of ``dataset``."""
        schema = dataset.schema
        if attributes is None:
            attributes = [
                a.name for a in schema.condition_attributes if a.is_continuous
            ]
        class_codes = dataset.class_codes
        n_classes = schema.n_classes
        for name in attributes:
            attr = schema[name]
            if not attr.is_continuous:
                raise DatasetError(
                    f"cannot discretise categorical attribute {name!r}"
                )
            col = dataset.column(name)
            keep = ~np.isnan(col)
            self.cuts_[name] = tuple(
                self.find_cuts(col[keep], class_codes[keep], n_classes)
            )
        return self

    def transform(self, dataset: Dataset) -> Dataset:
        """Rewrite every fitted attribute as a categorical interval
        column, returning a new data set."""
        out = dataset
        for name, cuts in self.cuts_.items():
            out = self._transform_one(out, name, cuts)
        return out

    def fit_transform(
        self, dataset: Dataset, attributes: Optional[Sequence[str]] = None
    ) -> Dataset:
        """Convenience: :meth:`fit` then :meth:`transform`."""
        return self.fit(dataset, attributes).transform(dataset)

    @staticmethod
    def _transform_one(
        dataset: Dataset, name: str, cuts: Sequence[float]
    ) -> Dataset:
        attr = dataset.schema[name]
        labels = interval_labels(cuts)
        new_attr = attr.with_values(labels)
        col = dataset.column(name)
        codes = np.searchsorted(np.asarray(cuts, dtype=float), col, side="left")
        codes = codes.astype(np.int64)
        codes[np.isnan(col)] = -1
        return dataset.replace_column(new_attr, codes)


class EqualWidthDiscretizer(Discretizer):
    """Split the observed range into ``n_bins`` equal-width intervals."""

    def __init__(self, n_bins: int = 5) -> None:
        super().__init__()
        if n_bins < 1:
            raise DatasetError("n_bins must be >= 1")
        self.n_bins = n_bins

    def find_cuts(
        self, values: np.ndarray, class_codes: np.ndarray, n_classes: int
    ) -> Tuple[float, ...]:
        if values.size == 0 or self.n_bins == 1:
            return ()
        lo = float(values.min())
        hi = float(values.max())
        if lo == hi:
            return ()
        edges = np.linspace(lo, hi, self.n_bins + 1)[1:-1]
        return tuple(float(e) for e in edges)


class EqualFrequencyDiscretizer(Discretizer):
    """Split at quantiles so each interval holds ~``n_bins``-th of rows."""

    def __init__(self, n_bins: int = 5) -> None:
        super().__init__()
        if n_bins < 1:
            raise DatasetError("n_bins must be >= 1")
        self.n_bins = n_bins

    def find_cuts(
        self, values: np.ndarray, class_codes: np.ndarray, n_classes: int
    ) -> Tuple[float, ...]:
        if values.size == 0 or self.n_bins == 1:
            return ()
        qs = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        cuts = np.quantile(values, qs)
        # Deduplicate: heavy ties can collapse adjacent quantiles.
        unique: List[float] = []
        for c in cuts:
            c = float(c)
            if not unique or c > unique[-1]:
                unique.append(c)
        hi = float(values.max())
        return tuple(c for c in unique if c < hi)


def _entropy(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


class EntropyMDLDiscretizer(Discretizer):
    """Fayyad & Irani (1993) supervised entropy/MDL discretisation.

    Recursively picks the boundary that minimises the class-entropy of
    the induced split, and accepts the split only when the information
    gain clears the MDL Principle threshold:

    ``gain > (log2(N - 1) + log2(3^k - 2) - k*E + k1*E1 + k2*E2) / N``

    where ``k``/``k1``/``k2`` are the class counts present in the parent
    and children and ``E``/``E1``/``E2`` their entropies.  Attributes
    with no accepted split fall back to a single interval (and a
    ``fallback`` equal-frequency split when requested).
    """

    def __init__(
        self, max_depth: int = 8, fallback_bins: int = 0
    ) -> None:
        super().__init__()
        self.max_depth = max_depth
        self.fallback_bins = fallback_bins

    def find_cuts(
        self, values: np.ndarray, class_codes: np.ndarray, n_classes: int
    ) -> Tuple[float, ...]:
        order = np.argsort(values, kind="stable")
        v = values[order]
        y = class_codes[order]
        cuts: List[float] = []
        self._split(v, y, n_classes, cuts, self.max_depth)
        if not cuts and self.fallback_bins > 1:
            return EqualFrequencyDiscretizer(self.fallback_bins).find_cuts(
                values, class_codes, n_classes
            )
        return tuple(sorted(cuts))

    def _split(
        self,
        v: np.ndarray,
        y: np.ndarray,
        n_classes: int,
        cuts: List[float],
        depth: int,
    ) -> None:
        n = v.size
        if depth <= 0 or n < 4:
            return
        parent_counts = np.bincount(y[y >= 0], minlength=n_classes)
        parent_entropy = _entropy(parent_counts)
        if parent_entropy == 0.0:
            return

        # Candidate boundaries: points where the value changes.  (Fayyad
        # showed optimal cuts lie on class-boundary points; value-change
        # points are a superset and simpler to enumerate.)
        change = np.nonzero(v[1:] != v[:-1])[0]
        if change.size == 0:
            return

        # Prefix class counts allow O(1) entropy per candidate.
        onehot = np.zeros((n, n_classes), dtype=np.int64)
        mask = y >= 0
        onehot[np.nonzero(mask)[0], y[mask]] = 1
        prefix = np.cumsum(onehot, axis=0)

        best_gain = -1.0
        best_idx = -1
        best_stats: Tuple[float, float, int, int] = (0.0, 0.0, 0, 0)
        total = parent_counts.sum()
        for idx in change:
            left = prefix[idx]
            right = parent_counts - left
            nl = left.sum()
            nr = right.sum()
            if nl == 0 or nr == 0:
                continue
            e1 = _entropy(left)
            e2 = _entropy(right)
            gain = parent_entropy - (nl / total) * e1 - (nr / total) * e2
            if gain > best_gain:
                best_gain = gain
                best_idx = int(idx)
                best_stats = (
                    e1,
                    e2,
                    int(np.count_nonzero(left)),
                    int(np.count_nonzero(right)),
                )

        if best_idx < 0:
            return
        e1, e2, k1, k2 = best_stats
        k = int(np.count_nonzero(parent_counts))
        delta = (
            math.log2(3**k - 2)
            - (k * parent_entropy - k1 * e1 - k2 * e2)
        )
        threshold = (math.log2(max(n - 1, 1)) + delta) / n
        if best_gain <= threshold:
            return

        cut = (float(v[best_idx]) + float(v[best_idx + 1])) / 2.0
        cuts.append(cut)
        self._split(v[: best_idx + 1], y[: best_idx + 1], n_classes, cuts,
                    depth - 1)
        self._split(v[best_idx + 1:], y[best_idx + 1:], n_classes, cuts,
                    depth - 1)


class ChiMergeDiscretizer(Discretizer):
    """Kerber's ChiMerge (1992): bottom-up chi-square interval merging.

    Start with one interval per distinct value and repeatedly merge the
    adjacent pair whose class distributions are most similar (lowest
    chi-square), until every adjacent pair differs significantly
    (chi-square above the threshold for the chosen significance level)
    or the interval count reaches ``min_intervals``.  ``max_intervals``
    forces further merging for very noisy columns.

    The chi-square of two adjacent intervals with class count rows
    ``a`` and ``b`` is the standard 2 x k statistic; intervals with
    expected counts of zero contribute nothing (the usual ChiMerge
    convention).
    """

    #: chi-square critical values at df = n_classes - 1 for the 0.95
    #: significance level (df 1..6; larger dfs fall back to Wilson-
    #: Hilferty approximation).
    _CHI2_95 = {1: 3.841, 2: 5.991, 3: 7.815, 4: 9.488, 5: 11.070,
                6: 12.592}

    def __init__(
        self,
        max_intervals: int = 8,
        min_intervals: int = 2,
        significance: float = 0.95,
    ) -> None:
        super().__init__()
        if min_intervals < 1 or max_intervals < min_intervals:
            raise DatasetError(
                "need 1 <= min_intervals <= max_intervals"
            )
        if significance != 0.95:
            raise DatasetError(
                "this implementation tabulates the 0.95 significance "
                "level only"
            )
        self.max_intervals = max_intervals
        self.min_intervals = min_intervals

    @classmethod
    def _critical_value(cls, df: int) -> float:
        if df in cls._CHI2_95:
            return cls._CHI2_95[df]
        # Wilson-Hilferty: chi2_p(df) ~ df (1 - 2/(9 df) + z sqrt(2/(9 df)))^3
        z = 1.645  # one-sided 0.95
        term = 1.0 - 2.0 / (9.0 * df) + z * math.sqrt(2.0 / (9.0 * df))
        return df * term**3

    @staticmethod
    def _pair_chi2(a: np.ndarray, b: np.ndarray) -> float:
        total = a.sum() + b.sum()
        if total == 0:
            return 0.0
        col = a + b
        chi2 = 0.0
        for row in (a, b):
            row_total = row.sum()
            for j in range(len(col)):
                expected = row_total * col[j] / total
                if expected > 0:
                    chi2 += (row[j] - expected) ** 2 / expected
        return float(chi2)

    def find_cuts(
        self, values: np.ndarray, class_codes: np.ndarray, n_classes: int
    ) -> Tuple[float, ...]:
        if values.size == 0:
            return ()
        order = np.argsort(values, kind="stable")
        v = values[order]
        y = class_codes[order]

        # One initial interval per distinct value, with class counts.
        boundaries: List[float] = []
        tables: List[np.ndarray] = []
        start = 0
        for i in range(1, v.size + 1):
            if i == v.size or v[i] != v[start]:
                seg = y[start:i]
                counts = np.bincount(
                    seg[seg >= 0], minlength=n_classes
                ).astype(float)
                tables.append(counts)
                if i < v.size:
                    boundaries.append(
                        (float(v[i - 1]) + float(v[i])) / 2.0
                    )
                start = i
        if len(tables) <= 1:
            return ()

        threshold = self._critical_value(max(n_classes - 1, 1))
        while len(tables) > self.min_intervals:
            chi2s = [
                self._pair_chi2(tables[i], tables[i + 1])
                for i in range(len(tables) - 1)
            ]
            best = int(np.argmin(chi2s))
            if (
                chi2s[best] > threshold
                and len(tables) <= self.max_intervals
            ):
                break
            tables[best] = tables[best] + tables[best + 1]
            del tables[best + 1]
            del boundaries[best]
        return tuple(boundaries)


class ManualDiscretizer(Discretizer):
    """User-supplied cut points per attribute.

    Mirrors the "manual discretization option" of the deployed system:
    domain experts often know the meaningful breakpoints (e.g. signal
    strength bands).

    >>> d = ManualDiscretizer({"SignalStrength": (-100.0, -85.0)})
    """

    def __init__(self, cuts: Dict[str, Sequence[float]]) -> None:
        super().__init__()
        for name, points in cuts.items():
            ordered = tuple(float(p) for p in points)
            if list(ordered) != sorted(set(ordered)):
                raise DatasetError(
                    f"cut points for {name!r} must be strictly ascending"
                )
            self.cuts_[name] = ordered

    def find_cuts(
        self, values: np.ndarray, class_codes: np.ndarray, n_classes: int
    ) -> Tuple[float, ...]:
        raise DatasetError(
            "ManualDiscretizer takes its cuts from the constructor; "
            "call transform() directly"
        )

    def fit(
        self, dataset: Dataset, attributes: Optional[Sequence[str]] = None
    ) -> "Discretizer":
        for name in self.cuts_:
            if not dataset.schema[name].is_continuous:
                raise DatasetError(
                    f"manual cuts given for non-continuous attribute "
                    f"{name!r}"
                )
        return self


def discretize_dataset(
    dataset: Dataset,
    method: str = "mdl",
    n_bins: int = 5,
    manual_cuts: Optional[Dict[str, Sequence[float]]] = None,
) -> Dataset:
    """Discretise every continuous condition attribute of ``dataset``.

    Parameters
    ----------
    method:
        ``"width"``, ``"frequency"``, ``"mdl"``, ``"chimerge"`` or
        ``"manual"``.
    n_bins:
        Bin count for the unsupervised methods (also the MDL fallback).
    manual_cuts:
        Required for ``method="manual"``.

    Returns the fully categorical data set ready for rule mining.
    """
    if method == "width":
        disc: Discretizer = EqualWidthDiscretizer(n_bins)
    elif method == "frequency":
        disc = EqualFrequencyDiscretizer(n_bins)
    elif method == "mdl":
        disc = EntropyMDLDiscretizer(fallback_bins=n_bins)
    elif method == "chimerge":
        disc = ChiMergeDiscretizer(max_intervals=max(n_bins, 2))
    elif method == "manual":
        if manual_cuts is None:
            raise DatasetError("manual discretisation requires manual_cuts")
        disc = ManualDiscretizer(dict(manual_cuts))
    else:
        raise DatasetError(
            f"unknown discretisation method {method!r}; expected one of "
            "'width', 'frequency', 'mdl', 'chimerge', 'manual'"
        )
    return disc.fit_transform(dataset)

"""Class-aware sampling for heavily skewed classification data.

The paper notes (Section I) that "the classes are highly skewed in the
data because successfully ended calls represent a very large proportion
of the data and the failure cases are rare ... Unbalanced sampling is
used before mining, which has been shown to work quite well", and that
"for huge data sets, sampling is applied" before cube generation
(Section V.C).

Two samplers are provided:

* :func:`unbalanced_sample` — keep all records of the rare (interesting)
  classes and down-sample the dominant class to a target ratio.
* :func:`random_sample` — plain uniform row sampling used before
  off-line cube generation on huge data.

Both are deterministic given a seed and return new :class:`Dataset`
objects; the input is never mutated.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .table import Dataset, DatasetError

__all__ = ["unbalanced_sample", "random_sample", "stratified_sample"]


def unbalanced_sample(
    dataset: Dataset,
    majority_class: Optional[str] = None,
    ratio: float = 1.0,
    seed: Optional[int] = None,
) -> Dataset:
    """Down-sample the majority class, keeping all minority records.

    Parameters
    ----------
    dataset:
        The input data set.
    majority_class:
        Label of the dominant class.  When omitted, the most frequent
        class is used.
    ratio:
        Target ratio of (sampled majority count) / (total minority
        count).  ``ratio=1.0`` balances the majority against all other
        classes combined; larger values keep more majority records.
    seed:
        Seed for the pseudo-random generator (reproducible sampling).

    Returns
    -------
    Dataset
        All minority rows plus the sampled majority rows, in original
        row order.
    """
    if ratio <= 0:
        raise DatasetError("sampling ratio must be positive")
    class_attr = dataset.schema.class_attribute
    counts = dataset.class_distribution()
    if majority_class is None:
        majority_code = int(np.argmax(counts))
    else:
        majority_code = class_attr.code_of(majority_class)
    codes = dataset.class_codes
    majority_idx = np.nonzero(codes == majority_code)[0]
    minority_idx = np.nonzero(
        (codes != majority_code) & (codes >= 0)
    )[0]

    target = int(round(ratio * minority_idx.size))
    target = min(target, majority_idx.size)
    if target == majority_idx.size:
        keep_majority = majority_idx
    else:
        rng = np.random.default_rng(seed)
        keep_majority = rng.choice(majority_idx, size=target, replace=False)

    keep = np.sort(np.concatenate([minority_idx, keep_majority]))
    return dataset.take(keep)


def random_sample(
    dataset: Dataset, fraction: float, seed: Optional[int] = None
) -> Dataset:
    """Uniformly sample a fraction of rows (without replacement)."""
    if not 0.0 < fraction <= 1.0:
        raise DatasetError("sampling fraction must be in (0, 1]")
    n = dataset.n_rows
    k = int(round(fraction * n))
    if k >= n:
        return dataset
    rng = np.random.default_rng(seed)
    keep = np.sort(rng.choice(n, size=k, replace=False))
    return dataset.take(keep)


def stratified_sample(
    dataset: Dataset,
    per_class: Sequence[int],
    seed: Optional[int] = None,
) -> Dataset:
    """Sample a fixed number of rows from each class.

    ``per_class`` lists the target count per class label, in domain
    order.  Classes with fewer records than requested contribute all of
    their rows.
    """
    class_attr = dataset.schema.class_attribute
    if len(per_class) != class_attr.arity:
        raise DatasetError(
            f"per_class must list one count per class "
            f"({class_attr.arity} classes)"
        )
    rng = np.random.default_rng(seed)
    codes = dataset.class_codes
    pieces = []
    for code, want in enumerate(per_class):
        if want < 0:
            raise DatasetError("per-class counts must be non-negative")
        idx = np.nonzero(codes == code)[0]
        if idx.size > want:
            idx = rng.choice(idx, size=want, replace=False)
        pieces.append(idx)
    keep = np.sort(np.concatenate(pieces)) if pieces else np.empty(0, int)
    return dataset.take(keep)

"""Schema-reshaping operations on data sets.

Dense rule cubes are quadratic in the attribute arities: a pair cube
over two 1000-value attributes has three million cells per class.  The
paper's analysts handled this upstream — the 600+ raw attributes were
curated to ~200 performance-related ones, and high-cardinality fields
(cell ids, handset serials) were either dropped or bucketed.  This
module provides those preparation steps:

* :func:`reduce_arity` — keep an attribute's top-k most frequent
  values and bucket the tail into a single ``<other>`` value (rule
  confidences for the kept values are unchanged; the tail is still
  countable);
* :func:`merge_values` — collapse an explicit set of values into one
  (e.g. fold sparse firmware builds into families);
* :func:`drop_attributes` — remove columns wholesale (the curation
  step).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from .schema import Attribute, MISSING
from .table import Dataset, DatasetError

__all__ = ["reduce_arity", "merge_values", "drop_attributes"]


def reduce_arity(
    dataset: Dataset,
    attribute: str,
    max_values: int,
    other_label: str = "<other>",
) -> Dataset:
    """Keep the ``max_values - 1`` most frequent values; bucket the
    rest into ``other_label``.

    The kept values' per-value class confidences are untouched (their
    records are unchanged); only the tail loses per-value resolution.
    When the attribute already fits, the data set is returned as-is.

    Kept values preserve their original relative order, and the bucket
    goes last, so interval-ish orderings survive for trend mining.
    """
    attr = dataset.schema[attribute]
    if not attr.is_categorical:
        raise DatasetError(
            f"reduce_arity requires a categorical attribute; "
            f"{attribute!r} is continuous"
        )
    if max_values < 2:
        raise DatasetError("max_values must be >= 2 (top values + "
                           "the bucket)")
    if attr.arity <= max_values:
        return dataset
    if other_label in attr.values:
        raise DatasetError(
            f"bucket label {other_label!r} collides with an existing "
            "value"
        )

    counts = dataset.value_counts(attribute)
    keep_n = max_values - 1
    # Most frequent values, ties broken by original order.
    order = np.argsort(-counts, kind="stable")
    kept_codes = np.sort(order[:keep_n])

    new_values = [attr.values[c] for c in kept_codes] + [other_label]
    new_attr = Attribute(attribute, values=new_values)

    remap = np.full(attr.arity, keep_n, dtype=np.int64)  # -> bucket
    for new_code, old_code in enumerate(kept_codes):
        remap[old_code] = new_code

    col = dataset.column(attribute)
    new_col = np.where(col == MISSING, MISSING, remap[col])
    return dataset.replace_column(new_attr, new_col)


def merge_values(
    dataset: Dataset,
    attribute: str,
    groups: Dict[str, Sequence[str]],
) -> Dataset:
    """Collapse named groups of values into single values.

    ``groups`` maps each new value to the old values it absorbs; old
    values not mentioned keep their identity.  New values appear after
    the surviving originals, in ``groups`` order.

    >>> # merge_values(ds, "Firmware", {"v1.x": ["v1.0", "v1.1"]})
    """
    attr = dataset.schema[attribute]
    if not attr.is_categorical:
        raise DatasetError(
            f"merge_values requires a categorical attribute; "
            f"{attribute!r} is continuous"
        )
    absorbed: Dict[str, str] = {}
    for new_value, olds in groups.items():
        for old in olds:
            if old not in attr.values:
                raise DatasetError(
                    f"{old!r} is not a value of {attribute!r}"
                )
            if old in absorbed:
                raise DatasetError(
                    f"value {old!r} appears in two groups"
                )
            absorbed[old] = new_value

    survivors = [v for v in attr.values if v not in absorbed]
    new_values: List[str] = list(survivors)
    for new_value in groups:
        if new_value in new_values:
            raise DatasetError(
                f"merged value {new_value!r} collides with a "
                "surviving original"
            )
        new_values.append(new_value)
    new_attr = Attribute(attribute, values=new_values)

    index = {v: i for i, v in enumerate(new_values)}
    remap = np.empty(attr.arity, dtype=np.int64)
    for code, value in enumerate(attr.values):
        remap[code] = index[absorbed.get(value, value)]

    col = dataset.column(attribute)
    new_col = np.where(col == MISSING, MISSING, remap[col])
    return dataset.replace_column(new_attr, new_col)


def drop_attributes(
    dataset: Dataset, names: Iterable[str]
) -> Dataset:
    """Remove condition attributes (the analysts' curation step)."""
    names = set(names)
    schema = dataset.schema
    if schema.class_name in names:
        raise DatasetError("cannot drop the class attribute")
    unknown = names - set(schema.names)
    if unknown:
        raise DatasetError(f"unknown attributes: {sorted(unknown)}")
    keep = [n for n in schema.names if n not in names]
    return dataset.project(keep)

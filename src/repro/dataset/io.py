"""Reading and writing data sets as delimited text.

The deployed system consumed monthly call-log extracts; this module
provides the equivalent plumbing for the reproduction: a small, strict
CSV reader/writer plus schema inference for files without a declared
schema.

The format is ordinary CSV with a header row of attribute names.  A
cell equal to the ``missing_token`` (default ``"?"``) is treated as a
missing value.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from .schema import Attribute, CATEGORICAL, CONTINUOUS, Schema
from .table import Dataset, DatasetError

__all__ = ["read_csv", "write_csv", "infer_schema", "iter_csv_chunks"]

PathLike = Union[str, Path]

#: Default rows per yielded chunk for streaming ingestion.  Large
#: enough that the vectorised per-chunk encode dominates the Python
#: row loop, small enough that the transient decoded-string block
#: stays tens of megabytes even for wide files.
DEFAULT_CSV_CHUNK_ROWS = 262_144


def _is_float(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True


def infer_schema(
    header: Sequence[str],
    rows: Iterable[Sequence[str]],
    class_attribute: str,
    missing_token: str = "?",
    max_categorical_arity: int = 64,
) -> Schema:
    """Infer a :class:`Schema` from string rows.

    A column is continuous when every non-missing cell parses as a float
    *and* the number of distinct cells exceeds ``max_categorical_arity``
    (small integer-coded columns such as 0/1 flags stay categorical).
    The class attribute is always categorical.
    """
    header = list(header)
    if class_attribute not in header:
        raise DatasetError(
            f"class attribute {class_attribute!r} not found in header"
        )
    n_cols = len(header)
    numeric = [True] * n_cols
    domains: List[dict] = [dict() for _ in range(n_cols)]
    for row in rows:
        if len(row) != n_cols:
            raise DatasetError(
                f"row with {len(row)} fields does not match header of "
                f"{n_cols} columns"
            )
        for i, cell in enumerate(row):
            if cell == missing_token:
                continue
            if cell not in domains[i]:
                domains[i][cell] = None
            if numeric[i] and not _is_float(cell):
                numeric[i] = False

    attributes = []
    for i, name in enumerate(header):
        distinct = list(domains[i])
        is_class = name == class_attribute
        if (
            not is_class
            and numeric[i]
            and len(distinct) > max_categorical_arity
        ):
            attributes.append(Attribute(name, CONTINUOUS))
        else:
            # Sort numerically when possible so interval-ish columns
            # keep a meaningful order for trend mining.
            if distinct and all(_is_float(v) for v in distinct):
                distinct.sort(key=float)
            else:
                distinct.sort()
            if not distinct:
                distinct = ["<empty>"]
            attributes.append(Attribute(name, CATEGORICAL, distinct))
    return Schema(attributes, class_attribute)


def iter_csv_chunks(
    path: PathLike,
    schema: Schema,
    chunk_rows: int = DEFAULT_CSV_CHUNK_ROWS,
    missing_token: str = "?",
    delimiter: str = ",",
) -> Iterator[Dataset]:
    """Stream a CSV file as encoded :class:`Dataset` chunks.

    The streaming face of :func:`read_csv`: at most ``chunk_rows`` raw
    rows are resident at a time, each chunk is encoded with the same
    vectorised per-column LUT pass :meth:`Dataset.from_rows` uses, and
    the file is read exactly once front to back.  This is what lets
    the spill encoder and ``repro serve`` warm-start from files larger
    than memory — the raw text never materialises whole.

    ``schema`` is required (streaming cannot infer domains it has not
    seen yet); the file's header must match the schema's column order.
    A header-only file yields no chunks.
    """
    if chunk_rows < 1:
        raise DatasetError("chunk_rows must be positive")
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError(f"{path} is empty") from None
        if list(header) != list(schema.names):
            raise DatasetError(
                "file header does not match the provided schema"
            )
        block: List[tuple] = []
        for row in reader:
            block.append(tuple(row))
            if len(block) >= chunk_rows:
                yield Dataset.from_rows(
                    schema, block, missing_token=missing_token
                )
                block = []
        if block:
            yield Dataset.from_rows(
                schema, block, missing_token=missing_token
            )


def read_csv(
    path: PathLike,
    class_attribute: str,
    schema: Optional[Schema] = None,
    missing_token: str = "?",
    delimiter: str = ",",
    max_categorical_arity: int = 64,
    chunk_rows: int = DEFAULT_CSV_CHUNK_ROWS,
) -> Dataset:
    """Load a delimited text file into a :class:`Dataset`.

    With a ``schema``, the file streams through
    :func:`iter_csv_chunks` in one pass — the raw text is never whole
    in memory, only the final coded columns are.  Without one, a
    single materialised pass is shared between :func:`infer_schema`
    and the encode (the file is read once either way).
    """
    path = Path(path)
    if schema is not None:
        if schema.class_name != class_attribute:
            raise DatasetError(
                "class_attribute disagrees with the provided schema"
            )
        chunks = list(
            iter_csv_chunks(
                path,
                schema,
                chunk_rows=chunk_rows,
                missing_token=missing_token,
                delimiter=delimiter,
            )
        )
        if not chunks:
            return Dataset.empty(schema)
        if len(chunks) == 1:
            return chunks[0]
        columns = {
            name: np.concatenate(
                [chunk.column(name) for chunk in chunks]
            )
            for name in schema.names
        }
        return Dataset.from_columns(schema, columns)

    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError(f"{path} is empty") from None
        rows = [tuple(r) for r in reader]
    # One materialised pass, shared: inference walks ``rows`` and the
    # encode below reuses the same list instead of re-reading the file.
    schema = infer_schema(
        header,
        rows,
        class_attribute,
        missing_token=missing_token,
        max_categorical_arity=max_categorical_arity,
    )
    return Dataset.from_rows(schema, rows, missing_token=missing_token)


def write_csv(
    dataset: Dataset,
    path: PathLike,
    missing_token: str = "?",
    delimiter: str = ",",
) -> None:
    """Write a data set as delimited text with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(dataset.schema.names)
        for row in dataset.iter_rows():
            writer.writerow(
                missing_token if cell is None else cell for cell in row
            )

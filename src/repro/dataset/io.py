"""Reading and writing data sets as delimited text.

The deployed system consumed monthly call-log extracts; this module
provides the equivalent plumbing for the reproduction: a small, strict
CSV reader/writer plus schema inference for files without a declared
schema.

The format is ordinary CSV with a header row of attribute names.  A
cell equal to the ``missing_token`` (default ``"?"``) is treated as a
missing value.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from .schema import Attribute, CATEGORICAL, CONTINUOUS, Schema
from .table import Dataset, DatasetError

__all__ = ["read_csv", "write_csv", "infer_schema"]

PathLike = Union[str, Path]


def _is_float(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True


def infer_schema(
    header: Sequence[str],
    rows: Iterable[Sequence[str]],
    class_attribute: str,
    missing_token: str = "?",
    max_categorical_arity: int = 64,
) -> Schema:
    """Infer a :class:`Schema` from string rows.

    A column is continuous when every non-missing cell parses as a float
    *and* the number of distinct cells exceeds ``max_categorical_arity``
    (small integer-coded columns such as 0/1 flags stay categorical).
    The class attribute is always categorical.
    """
    header = list(header)
    if class_attribute not in header:
        raise DatasetError(
            f"class attribute {class_attribute!r} not found in header"
        )
    n_cols = len(header)
    numeric = [True] * n_cols
    domains: List[dict] = [dict() for _ in range(n_cols)]
    for row in rows:
        if len(row) != n_cols:
            raise DatasetError(
                f"row with {len(row)} fields does not match header of "
                f"{n_cols} columns"
            )
        for i, cell in enumerate(row):
            if cell == missing_token:
                continue
            if cell not in domains[i]:
                domains[i][cell] = None
            if numeric[i] and not _is_float(cell):
                numeric[i] = False

    attributes = []
    for i, name in enumerate(header):
        distinct = list(domains[i])
        is_class = name == class_attribute
        if (
            not is_class
            and numeric[i]
            and len(distinct) > max_categorical_arity
        ):
            attributes.append(Attribute(name, CONTINUOUS))
        else:
            # Sort numerically when possible so interval-ish columns
            # keep a meaningful order for trend mining.
            if distinct and all(_is_float(v) for v in distinct):
                distinct.sort(key=float)
            else:
                distinct.sort()
            if not distinct:
                distinct = ["<empty>"]
            attributes.append(Attribute(name, CATEGORICAL, distinct))
    return Schema(attributes, class_attribute)


def read_csv(
    path: PathLike,
    class_attribute: str,
    schema: Optional[Schema] = None,
    missing_token: str = "?",
    delimiter: str = ",",
    max_categorical_arity: int = 64,
) -> Dataset:
    """Load a delimited text file into a :class:`Dataset`.

    When ``schema`` is omitted the file is scanned once to infer one
    (see :func:`infer_schema`) and once more to code the rows.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError(f"{path} is empty") from None
        rows = [tuple(r) for r in reader]

    if schema is None:
        schema = infer_schema(
            header,
            rows,
            class_attribute,
            missing_token=missing_token,
            max_categorical_arity=max_categorical_arity,
        )
    else:
        if list(header) != list(schema.names):
            raise DatasetError(
                "file header does not match the provided schema"
            )
        if schema.class_name != class_attribute:
            raise DatasetError(
                "class_attribute disagrees with the provided schema"
            )

    # Reorder row fields to schema order (they match header order here).
    order = [header.index(name) for name in schema.names]
    reordered = ([row[i] for i in order] for row in rows)
    return Dataset.from_rows(schema, reordered, missing_token=missing_token)


def write_csv(
    dataset: Dataset,
    path: PathLike,
    missing_token: str = "?",
    delimiter: str = ",",
) -> None:
    """Write a data set as delimited text with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(dataset.schema.names)
        for row in dataset.iter_rows():
            writer.writerow(
                missing_token if cell is None else cell for cell in row
            )

"""Attribute and schema descriptions for classification data sets.

The paper's data sets are "like any classification data set" (Section I):
a collection of records over named attributes, one of which is the class
(target) attribute.  Attributes are either *categorical* (a finite set of
symbolic values) or *continuous* (real-valued; must be discretised before
rule mining, Section III.A).

This module defines the immutable metadata objects used throughout the
library:

* :class:`Attribute` — one column: name, kind, and (for categorical
  attributes) the ordered tuple of possible values.
* :class:`Schema` — an ordered collection of attributes plus the identity
  of the class attribute.

Values of a categorical attribute are referred to elsewhere by their
*code*: the integer index into :attr:`Attribute.values`.  The special code
:data:`MISSING` (``-1``) marks an absent value.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

__all__ = [
    "MISSING",
    "CATEGORICAL",
    "CONTINUOUS",
    "Attribute",
    "Schema",
    "SchemaError",
]

#: Integer code used to mark a missing value in a coded column.
MISSING = -1

#: Kind tag for categorical (symbolic, finite-domain) attributes.
CATEGORICAL = "categorical"

#: Kind tag for continuous (real-valued) attributes.
CONTINUOUS = "continuous"

_KINDS = (CATEGORICAL, CONTINUOUS)


class SchemaError(ValueError):
    """Raised for inconsistent attribute or schema definitions."""


class Attribute:
    """Description of a single data-set column.

    Parameters
    ----------
    name:
        Column name, unique within a schema.
    kind:
        Either :data:`CATEGORICAL` or :data:`CONTINUOUS`.
    values:
        For categorical attributes, the ordered domain.  The order is
        meaningful: trend mining (``repro.gi``) reads confidences along
        this order, and discretised attributes keep their intervals in
        ascending order.  Must be ``None`` for continuous attributes.

    Examples
    --------
    >>> phone = Attribute("PhoneModel", CATEGORICAL, ("ph1", "ph2", "ph3"))
    >>> phone.arity
    3
    >>> phone.code_of("ph2")
    1
    >>> phone.value_of(1)
    'ph2'
    """

    __slots__ = ("_name", "_kind", "_values", "_index")

    def __init__(
        self,
        name: str,
        kind: str = CATEGORICAL,
        values: Optional[Sequence[str]] = None,
    ) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError("attribute name must be a non-empty string")
        if kind not in _KINDS:
            raise SchemaError(
                f"unknown attribute kind {kind!r}; expected one of {_KINDS}"
            )
        if kind == CONTINUOUS:
            if values is not None:
                raise SchemaError(
                    f"continuous attribute {name!r} cannot declare values"
                )
            self._values: Optional[Tuple[str, ...]] = None
            self._index = {}
        else:
            if values is None:
                raise SchemaError(
                    f"categorical attribute {name!r} must declare its values"
                )
            vals = tuple(str(v) for v in values)
            if not vals:
                raise SchemaError(
                    f"categorical attribute {name!r} must have at least one value"
                )
            if len(set(vals)) != len(vals):
                raise SchemaError(
                    f"categorical attribute {name!r} has duplicate values"
                )
            self._values = vals
            self._index = {v: i for i, v in enumerate(vals)}
        self._name = name
        self._kind = kind

    @property
    def name(self) -> str:
        """Column name."""
        return self._name

    @property
    def kind(self) -> str:
        """Attribute kind tag (categorical or continuous)."""
        return self._kind

    @property
    def values(self) -> Tuple[str, ...]:
        """Ordered value domain (categorical attributes only)."""
        if self._values is None:
            raise SchemaError(
                f"continuous attribute {self._name!r} has no value domain"
            )
        return self._values

    @property
    def is_categorical(self) -> bool:
        """True when the attribute is categorical."""
        return self._kind == CATEGORICAL

    @property
    def is_continuous(self) -> bool:
        """True when the attribute is continuous."""
        return self._kind == CONTINUOUS

    @property
    def arity(self) -> int:
        """Number of possible values (categorical attributes only)."""
        return len(self.values)

    def code_of(self, value: str) -> int:
        """Return the integer code of ``value`` within this attribute.

        Raises :class:`SchemaError` when the value is not in the domain.
        """
        try:
            return self._index[str(value)]
        except KeyError:
            raise SchemaError(
                f"value {value!r} is not in the domain of attribute "
                f"{self._name!r} (domain: {self._values})"
            ) from None

    def value_of(self, code: int) -> str:
        """Return the symbolic value for an integer ``code``."""
        values = self.values
        if not 0 <= code < len(values):
            raise SchemaError(
                f"code {code} out of range for attribute {self._name!r} "
                f"with arity {len(values)}"
            )
        return values[code]

    def with_values(self, values: Sequence[str]) -> "Attribute":
        """Return a categorical copy of this attribute with a new domain.

        Used by discretisers to turn a continuous attribute into a
        categorical one whose values are interval labels.
        """
        return Attribute(self._name, CATEGORICAL, values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return (
            self._name == other._name
            and self._kind == other._kind
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((self._name, self._kind, self._values))

    def __repr__(self) -> str:
        if self.is_continuous:
            return f"Attribute({self._name!r}, continuous)"
        return f"Attribute({self._name!r}, values={self._values!r})"


class Schema:
    """Ordered attribute collection with a designated class attribute.

    The class attribute (called *C* in the paper) must be categorical: its
    values are the classes, e.g. ``failed-during-setup``,
    ``dropped-while-in-progress``, ``ended-successfully``.

    Parameters
    ----------
    attributes:
        All attributes, in column order, *including* the class attribute.
    class_attribute:
        Name of the class attribute.

    Examples
    --------
    >>> schema = Schema(
    ...     [
    ...         Attribute("PhoneModel", values=("ph1", "ph2")),
    ...         Attribute("Outcome", values=("ok", "drop")),
    ...     ],
    ...     class_attribute="Outcome",
    ... )
    >>> schema.class_attribute.name
    'Outcome'
    >>> [a.name for a in schema.condition_attributes]
    ['PhoneModel']
    """

    __slots__ = ("_attributes", "_by_name", "_class_name")

    def __init__(
        self, attributes: Iterable[Attribute], class_attribute: str
    ) -> None:
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a schema needs at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {dupes}")
        by_name = {a.name: a for a in attrs}
        if class_attribute not in by_name:
            raise SchemaError(
                f"class attribute {class_attribute!r} is not in the schema"
            )
        cls = by_name[class_attribute]
        if not cls.is_categorical:
            raise SchemaError(
                f"class attribute {class_attribute!r} must be categorical"
            )
        self._attributes = attrs
        self._by_name = by_name
        self._class_name = class_attribute

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """All attributes in column order, including the class."""
        return self._attributes

    @property
    def class_attribute(self) -> Attribute:
        """The designated class (target) attribute."""
        return self._by_name[self._class_name]

    @property
    def class_name(self) -> str:
        """Name of the class attribute."""
        return self._class_name

    @property
    def classes(self) -> Tuple[str, ...]:
        """The class labels, i.e. the domain of the class attribute."""
        return self.class_attribute.values

    @property
    def n_classes(self) -> int:
        """Number of class labels."""
        return self.class_attribute.arity

    @property
    def condition_attributes(self) -> Tuple[Attribute, ...]:
        """All attributes except the class, in column order.

        These are the attributes rules may condition on and the
        comparator may rank.
        """
        return tuple(a for a in self._attributes if a.name != self._class_name)

    @property
    def names(self) -> Tuple[str, ...]:
        """All attribute names in column order."""
        return tuple(a.name for a in self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r} in schema") from None

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self._attributes == other._attributes
            and self._class_name == other._class_name
        )

    def __hash__(self) -> int:
        return hash((self._attributes, self._class_name))

    def index_of(self, name: str) -> int:
        """Column index of the named attribute."""
        for i, attr in enumerate(self._attributes):
            if attr.name == name:
                return i
        raise SchemaError(f"no attribute named {name!r} in schema")

    def replace(self, attribute: Attribute) -> "Schema":
        """Return a schema with the same-named attribute replaced.

        Used when a discretiser converts a continuous attribute to a
        categorical one.
        """
        if attribute.name not in self._by_name:
            raise SchemaError(
                f"cannot replace unknown attribute {attribute.name!r}"
            )
        attrs = tuple(
            attribute if a.name == attribute.name else a
            for a in self._attributes
        )
        return Schema(attrs, self._class_name)

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a schema restricted to ``names`` (class must be kept)."""
        if self._class_name not in names:
            raise SchemaError("a projection must retain the class attribute")
        missing = [n for n in names if n not in self._by_name]
        if missing:
            raise SchemaError(f"unknown attributes in projection: {missing}")
        return Schema([self._by_name[n] for n in names], self._class_name)

    def __repr__(self) -> str:
        return (
            f"Schema({len(self._attributes)} attributes, "
            f"class={self._class_name!r})"
        )

"""Columnar data set backing the rule-cube machinery.

The paper's call-log data is very large (hundreds of attributes, millions
of records per month).  Rule-cube construction only ever needs *counts of
co-occurring attribute values*, so the natural in-memory layout is
columnar: each categorical attribute is one :class:`numpy.ndarray` of
integer codes (indices into :attr:`Attribute.values`), and each continuous
attribute is one float array awaiting discretisation.

:class:`Dataset` is deliberately small: selection (boolean masks),
projection, stacking and per-column access.  Mining logic lives in the
packages layered on top (``repro.rules``, ``repro.cube``).

For write-heavy callers (the cube store's ingest path) the module also
provides :class:`AppendBuffer`, an amortised-growth appender whose
snapshots are read-only prefix views over shared over-allocated
buffers — N small appends cost O(total rows) in copies instead of the
O(total_rows·N) that repeated :meth:`Dataset.concat` calls would.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .schema import MISSING, Attribute, Schema

__all__ = ["AppendBuffer", "Dataset", "DatasetError"]


class DatasetError(ValueError):
    """Raised for malformed or inconsistent data-set operations."""


class Dataset:
    """Immutable columnar table of coded records over a :class:`Schema`.

    Categorical columns hold ``int64`` codes (``MISSING`` = ``-1`` marks an
    absent value); continuous columns hold ``float64`` (``NaN`` marks an
    absent value).

    Construct with :meth:`from_columns` (already-coded arrays),
    :meth:`from_rows` (symbolic rows) or via ``repro.dataset.io``.

    Examples
    --------
    >>> schema = Schema(
    ...     [
    ...         Attribute("A", values=("x", "y")),
    ...         Attribute("C", values=("no", "yes")),
    ...     ],
    ...     class_attribute="C",
    ... )
    >>> ds = Dataset.from_rows(schema, [("x", "yes"), ("y", "no")])
    >>> len(ds)
    2
    >>> ds.column("A").tolist()
    [0, 1]
    """

    __slots__ = ("_schema", "_columns", "_n_rows")

    def __init__(
        self, schema: Schema, columns: Mapping[str, np.ndarray]
    ) -> None:
        if set(columns) != set(schema.names):
            missing = set(schema.names) - set(columns)
            extra = set(columns) - set(schema.names)
            raise DatasetError(
                f"column/schema mismatch (missing: {sorted(missing)}, "
                f"unexpected: {sorted(extra)})"
            )
        normalised: Dict[str, np.ndarray] = {}
        n_rows: Optional[int] = None
        for attr in schema:
            col = np.asarray(columns[attr.name])
            if col.ndim != 1:
                raise DatasetError(
                    f"column {attr.name!r} must be one-dimensional"
                )
            if n_rows is None:
                n_rows = col.shape[0]
            elif col.shape[0] != n_rows:
                raise DatasetError(
                    f"column {attr.name!r} has {col.shape[0]} rows; "
                    f"expected {n_rows}"
                )
            if attr.is_categorical:
                col = col.astype(np.int64, copy=False)
                if col.size:
                    lo = int(col.min())
                    hi = int(col.max())
                    if lo < MISSING or hi >= attr.arity:
                        raise DatasetError(
                            f"column {attr.name!r} contains codes outside "
                            f"[{MISSING}, {attr.arity - 1}]"
                        )
            else:
                col = col.astype(np.float64, copy=False)
            col.setflags(write=False)
            normalised[attr.name] = col
        self._schema = schema
        self._columns = normalised
        self._n_rows = int(n_rows or 0)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_columns(
        cls, schema: Schema, columns: Mapping[str, np.ndarray]
    ) -> "Dataset":
        """Build a data set from already-coded column arrays."""
        return cls(schema, columns)

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Iterable[Sequence[object]],
        missing_token: str = "?",
    ) -> "Dataset":
        """Build a data set from symbolic row tuples.

        Each row lists one entry per schema attribute, in schema order.
        Categorical entries are looked up in the attribute domain;
        ``missing_token`` (default ``"?"``) codes as missing.  Continuous
        entries are parsed as floats (``missing_token`` becomes NaN).

        Encoding is columnar, not row-by-row: each categorical column is
        deduplicated with :func:`numpy.unique` and
        :meth:`Attribute.code_of` runs once per *distinct* value, so a
        million-row batch over low-arity attributes costs a handful of
        domain lookups instead of a Python-level call per field.
        """
        attrs = schema.attributes
        materialised = [tuple(row) for row in rows]
        for row_number, row in enumerate(materialised):
            if len(row) != len(attrs):
                raise DatasetError(
                    f"row {row_number} has {len(row)} fields; "
                    f"expected {len(attrs)}"
                )
        columns: Dict[str, np.ndarray] = {}
        raw_columns = (
            zip(*materialised) if materialised else [() for _ in attrs]
        )
        for attr, raw in zip(attrs, raw_columns):
            if attr.is_categorical:
                columns[attr.name] = cls._encode_categorical(
                    attr, raw, missing_token
                )
            else:
                columns[attr.name] = cls._encode_continuous(
                    raw, missing_token
                )
        return cls(schema, columns)

    @staticmethod
    def _encode_categorical(
        attr: Attribute, raw: Sequence[object], missing_token: str
    ) -> np.ndarray:
        """Vectorised domain encoding of one symbolic column."""
        strings = np.asarray(
            [missing_token if v is None else str(v) for v in raw],
            dtype="U",
        )
        if strings.size == 0:
            return np.empty(0, dtype=np.int64)
        unique, inverse = np.unique(strings, return_inverse=True)
        lut = np.empty(unique.shape[0], dtype=np.int64)
        for j, value in enumerate(unique):
            token = str(value)
            if token == missing_token:
                lut[j] = MISSING
            else:
                lut[j] = attr.code_of(token)
        return lut[inverse]

    @staticmethod
    def _encode_continuous(
        raw: Sequence[object], missing_token: str
    ) -> np.ndarray:
        """Float parsing of one column; NaN marks missing entries."""
        try:
            # Fast path: numpy parses numbers, numeric strings and
            # None (-> NaN) in one C pass; the token or junk raises.
            return np.asarray(raw, dtype=np.float64)
        except (TypeError, ValueError):
            return np.asarray(
                [
                    float("nan")
                    if v is None or str(v) == missing_token
                    else float(v)
                    for v in raw
                ],
                dtype=np.float64,
            )

    @classmethod
    def empty(cls, schema: Schema) -> "Dataset":
        """An empty (zero-row) data set over ``schema``."""
        columns = {}
        for attr in schema:
            dtype = np.int64 if attr.is_categorical else np.float64
            columns[attr.name] = np.empty(0, dtype=dtype)
        return cls(schema, columns)

    @classmethod
    def _trusted(
        cls,
        schema: Schema,
        columns: Dict[str, np.ndarray],
        n_rows: int,
    ) -> "Dataset":
        """Wrap pre-validated columns without the per-column code scan.

        Internal constructor for callers that *guarantee* the columns
        are read-only, correctly typed, equally sized and code-valid —
        today only :class:`AppendBuffer`, whose buffers only ever hold
        data that already passed a public constructor.  Skipping the
        O(rows) min/max validation here is what makes snapshotting
        after an append O(attributes) instead of O(rows).
        """
        dataset = cls.__new__(cls)
        dataset._schema = schema
        dataset._columns = columns
        dataset._n_rows = int(n_rows)
        return dataset

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The schema describing this data set's columns."""
        return self._schema

    @property
    def n_rows(self) -> int:
        """Number of records."""
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    def column(self, name: str) -> np.ndarray:
        """The (read-only) coded array for the named attribute."""
        try:
            return self._columns[name]
        except KeyError:
            raise DatasetError(f"no column named {name!r}") from None

    @property
    def class_codes(self) -> np.ndarray:
        """The coded class column."""
        return self._columns[self._schema.class_name]

    def row(self, index: int) -> Tuple[object, ...]:
        """Materialise one record as a tuple of symbolic values."""
        if not 0 <= index < self._n_rows:
            raise DatasetError(
                f"row index {index} out of range for {self._n_rows} rows"
            )
        out: List[object] = []
        for attr in self._schema:
            raw = self._columns[attr.name][index]
            if attr.is_categorical:
                code = int(raw)
                out.append(None if code == MISSING else attr.value_of(code))
            else:
                value = float(raw)
                out.append(None if np.isnan(value) else value)
        return tuple(out)

    def iter_rows(self) -> Iterator[Tuple[object, ...]]:
        """Iterate over records as symbolic tuples (slow; for tests/IO)."""
        for i in range(self._n_rows):
            yield self.row(i)

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------

    def select(self, mask: np.ndarray) -> "Dataset":
        """Return the subset of rows where ``mask`` is true."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (self._n_rows,):
            raise DatasetError(
                "selection mask must be a boolean array with one entry "
                "per row"
            )
        columns = {name: col[mask] for name, col in self._columns.items()}
        return Dataset(self._schema, columns)

    def where(self, attribute: str, value: str) -> "Dataset":
        """Rows whose categorical ``attribute`` equals ``value``.

        This is the sub-population operator of the paper's problem
        statement: ``D_j = { d in D | A_i(d) = v_ij }``.
        """
        attr = self._schema[attribute]
        code = attr.code_of(value)
        return self.select(self._columns[attribute] == code)

    def project(self, names: Sequence[str]) -> "Dataset":
        """Restrict to the named attributes (class must be retained)."""
        schema = self._schema.project(names)
        columns = {n: self._columns[n] for n in schema.names}
        return Dataset(schema, columns)

    def take(self, indices: np.ndarray) -> "Dataset":
        """Return the rows at ``indices`` (with repetition allowed)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (
            indices.min() < 0 or indices.max() >= self._n_rows
        ):
            raise DatasetError("row indices out of range")
        columns = {name: col[indices] for name, col in self._columns.items()}
        return Dataset(self._schema, columns)

    def concat(self, other: "Dataset") -> "Dataset":
        """Stack another data set with an identical schema below this one."""
        if other.schema != self._schema:
            raise DatasetError("cannot concatenate data sets with "
                               "different schemas")
        columns = {
            name: np.concatenate([col, other._columns[name]])
            for name, col in self._columns.items()
        }
        return Dataset(self._schema, columns)

    def duplicate(self, times: int) -> "Dataset":
        """Repeat all rows ``times`` times.

        The paper scales its record-count experiment (Fig. 11) by
        duplicating the 2M-record data set up to 8M records; this method
        reproduces that protocol.
        """
        if times < 1:
            raise DatasetError("duplication factor must be >= 1")
        columns = {
            name: np.tile(col, times) for name, col in self._columns.items()
        }
        return Dataset(self._schema, columns)

    def replace_column(
        self, attribute: Attribute, codes: np.ndarray
    ) -> "Dataset":
        """Swap in a new definition and coded column for one attribute.

        Used by discretisers: the continuous column is replaced by a
        categorical interval-coded column under the same name.
        """
        schema = self._schema.replace(attribute)
        columns = dict(self._columns)
        columns[attribute.name] = np.asarray(codes)
        return Dataset(schema, columns)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def value_counts(self, attribute: str) -> np.ndarray:
        """Occurrence count of each value of a categorical attribute.

        Missing values are excluded.  The result has one entry per domain
        value, in domain order.
        """
        attr = self._schema[attribute]
        if not attr.is_categorical:
            raise DatasetError(
                f"value_counts requires a categorical attribute, and "
                f"{attribute!r} is continuous"
            )
        col = self._columns[attribute]
        present = col[col >= 0]
        return np.bincount(present, minlength=attr.arity).astype(np.int64)

    def class_distribution(self) -> np.ndarray:
        """Occurrence count of each class label."""
        return self.value_counts(self._schema.class_name)

    def missing_count(self, attribute: str) -> int:
        """Number of rows with a missing value for ``attribute``."""
        attr = self._schema[attribute]
        col = self._columns[attribute]
        if attr.is_categorical:
            return int(np.count_nonzero(col == MISSING))
        return int(np.count_nonzero(np.isnan(col)))

    def __repr__(self) -> str:
        return (
            f"Dataset({self._n_rows} rows, "
            f"{len(self._schema)} attributes, "
            f"class={self._schema.class_name!r})"
        )


class AppendBuffer:
    """Amortised-growth appender over one schema.

    Repeatedly calling :meth:`Dataset.concat` for a stream of small
    batches copies the whole history every time — N batches over T
    total rows cost O(T·N).  This buffer over-allocates each column
    (capacity doubling, like a ``list``) so the same stream costs
    amortised O(T): an append usually just writes the batch into the
    tail of the existing buffers.

    :meth:`append` returns an immutable :class:`Dataset` that is a
    read-only *prefix view* ``buffer[:n]`` of the shared columns.
    Later appends write strictly beyond ``n``, so every previously
    returned snapshot keeps seeing exactly the rows it saw at creation
    — the copy-on-write contract the cube store's snapshot swap relies
    on.

    Single-writer: concurrent :meth:`append` calls must be serialised
    by the caller (the cube store holds its write lock around absorb).
    Snapshots may be read from any thread.
    """

    __slots__ = ("_schema", "_buffers", "_n", "_capacity", "_dataset")

    #: Floor for the first over-allocation, so a trickle of tiny
    #: batches does not reallocate until it has somewhere to grow.
    MIN_CAPACITY = 1024

    def __init__(self, dataset: Dataset) -> None:
        self._schema = dataset.schema
        # The seed dataset's (read-only) columns serve as the initial
        # zero-slack buffers; the first append reallocates with room.
        self._buffers: Dict[str, np.ndarray] = {
            attr.name: dataset.column(attr.name) for attr in self._schema
        }
        self._n = dataset.n_rows
        self._capacity = dataset.n_rows
        self._dataset = dataset

    @property
    def schema(self) -> Schema:
        """The schema every appended batch must match."""
        return self._schema

    @property
    def dataset(self) -> Dataset:
        """The current snapshot (all rows appended so far)."""
        return self._dataset

    def __len__(self) -> int:
        return self._n

    def _grow(self, needed: int) -> None:
        new_capacity = max(2 * needed, self.MIN_CAPACITY)
        for name, buf in self._buffers.items():
            grown = np.empty(new_capacity, dtype=buf.dtype)
            grown[: self._n] = buf[: self._n]
            self._buffers[name] = grown
        self._capacity = new_capacity

    def append(self, batch: Dataset) -> Dataset:
        """Add ``batch``'s rows; return the new snapshot.

        A zero-row batch returns the current snapshot unchanged.
        """
        if batch.schema != self._schema:
            raise DatasetError(
                "cannot append a batch with a different schema"
            )
        m = batch.n_rows
        if m == 0:
            return self._dataset
        if self._n + m > self._capacity:
            self._grow(self._n + m)
        columns: Dict[str, np.ndarray] = {}
        for attr in self._schema:
            buf = self._buffers[attr.name]
            buf[self._n : self._n + m] = batch.column(attr.name)
            view = buf[: self._n + m]
            view.setflags(write=False)
            columns[attr.name] = view
        self._n += m
        self._dataset = Dataset._trusted(self._schema, columns, self._n)
        return self._dataset

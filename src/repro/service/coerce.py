"""Strict numeric coercion for JSON-sourced values.

``bool`` is an ``int`` subclass in Python, so the obvious
``isinstance(value, (int, float))`` accepts ``true``/``false`` from a
JSON body and silently treats them as ``1``/``0`` — the class of bug
PR 4 fixed server-side for ``top``/``deadline_ms``.  Every place that
reads "a number" out of parsed JSON (client retry hints, config
validation, HTTP parameter checks) routes through these two helpers so
the rejection happens once, identically, everywhere.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["is_number", "as_number"]


def is_number(value: object) -> bool:
    """True only for real JSON numbers: int/float, never bool."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def as_number(value: object) -> Optional[float]:
    """``float(value)`` for a real number, ``None`` for anything else.

    Non-finite floats pass through — callers that must exclude them
    check ``math.isfinite`` on the result.
    """
    if not is_number(value):
        return None
    return float(value)

"""Pre-fork multi-process serving tier.

The single-process server tops out at roughly one core: handler
threads and the comparison pool share one GIL, so once the numpy
kernels stop dominating, adding threads adds contention, not
throughput.  This module scales the *read* path across cores the
classic pre-fork way while keeping the write path exactly as the
in-process copy-on-write design demands — one writer, atomic snapshot
swaps, readers never blocked:

* the **parent** owns every mutable store, the WAL, and ingest.  It
  publishes each store's immutable snapshot count tensors into
  ``multiprocessing.shared_memory`` via
  :class:`repro.cube.shm.SnapshotPublisher` — one generation-stamped
  segment per publish, current + previous kept linked so a reader can
  never lose the attach race backwards;
* **N workers** are forked after publication.  Each attaches the
  segments read-only (:class:`repro.cube.shm.SnapshotSubscriber` —
  O(1) warm start: ``mmap`` + header parse, no counting), builds its
  own :class:`~repro.service.engine.ComparisonEngine` over the
  attach-only stores, and serves HTTP with its own thread pool.  The
  count tensors live in the page cache once, mapped by everyone;
* ``/ingest`` hitting a worker is **forwarded** over a pipe to the
  parent — the single writer — which absorbs (WAL semantics
  unchanged), republishes the new generation, and only then replies.
  The forwarding worker refreshes before acknowledging, so a client
  that ingests and immediately compares *on the same connection*
  reads its own write; other workers swap within one stamp-poll tick
  (eventual, like any replicated read tier);
* ``/metrics`` on any worker asks the parent, which collects every
  process's registry dump over the command pipes and renders one
  fleet-wide exposition (:func:`repro.service.metrics.merge_dumps`).

Two accept strategies: by default the parent binds one listening
socket before forking and every worker accepts on the inherited
descriptor (one shared queue).  With ``ServiceConfig.reuse_port``
each worker binds its own ``SO_REUSEPORT`` socket instead and the
kernel hash-balances connections across them; where the platform
lacks ``SO_REUSEPORT`` the shared socket is the fallback.

The parent also monitors its children: a worker that dies (OOM, bug,
``kill -9``) is reaped and respawned into the same slot — its
replacement attaches the current generation in milliseconds, so one
crash costs the connections that were on that worker, never a 5xx
storm.  Shutdown (SIGTERM/SIGINT) is graceful end to end: workers
drain in-flight requests and exit; the parent reaps them, unlinks
every shared-memory segment, closes the WAL, and leaves ``/dev/shm``
exactly as it found it.

POSIX only (``os.fork``); the CLI refuses ``--worker-procs`` > 1
elsewhere.  Workers hold attach-only stores, so cubes must be
materialised before serving — ``repro serve`` precomputes by default
and refuses ``--no-precompute`` in this mode.
"""

from __future__ import annotations

import logging
import os
import signal
import socket
import threading
import time
from dataclasses import replace
from multiprocessing.connection import Connection, Pipe
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cube.shm import ShmError, SnapshotPublisher, SnapshotSubscriber
from ..cube.wal import WalError
from .config import ServiceConfig
from .engine import (
    ComparisonEngine,
    DeadlineExceeded,
    IngestOutcome,
    IngestOverloaded,
    StoreUnavailable,
    UnknownStoreError,
)
from .http import ComparisonHTTPServer
from .metrics import merge_dumps
from .tracing import set_worker_id

__all__ = ["serve_prefork", "PreforkError"]

logger = logging.getLogger("repro.service.prefork")

#: How often a worker polls the publish stamp (one shared 8-byte
#: read) for a new generation to swap in.
STAMP_POLL_SECONDS = 0.02

#: How long the parent waits for SIGTERMed workers before SIGKILL.
DRAIN_TIMEOUT_SECONDS = 10.0


class PreforkError(RuntimeError):
    """Raised when the pre-fork tier cannot start."""


def _reconstruct_error(kind: str, args: Tuple[Any, ...]) -> Exception:
    """Rebuild the parent's typed ingest error in the worker.

    The typed exceptions take multiple constructor arguments, which
    plain pickling through a pipe mangles (``Exception.__reduce__``
    replays ``args`` into ``__init__``), so errors cross the pipe as
    ``(kind, ctor_args)`` tuples instead of exception objects.
    """
    if kind == "overloaded":
        return IngestOverloaded(*args)
    if kind == "unavailable":
        return StoreUnavailable(*args)
    if kind == "deadline":
        return DeadlineExceeded(*args)
    if kind == "unknown_store":
        return UnknownStoreError(*args)
    if kind == "wal":
        return WalError(*args)
    if kind == "bad_request":
        return ValueError(*args)
    return RuntimeError(*args)


class _ParentProxy:
    """A worker's half of the request pipe to the parent.

    One duplex connection, strictly serialised round trips: handler
    threads take the lock, send one request, read its one reply.
    Ingest replies of ``("ok", outcome)`` trigger a subscriber refresh
    before returning, so the acknowledging worker serves the new
    generation to the very next request on the same connection.
    """

    def __init__(
        self, conn: Connection, subscriber: SnapshotSubscriber
    ) -> None:
        self._conn = conn
        self._subscriber = subscriber
        self._lock = threading.Lock()

    def _round_trip(self, message: Tuple[Any, ...]) -> Tuple[Any, ...]:
        with self._lock:
            try:
                self._conn.send(message)
                return self._conn.recv()
            except (EOFError, OSError) as exc:
                raise StoreUnavailable("parent", 1.0) from exc

    def ingest(
        self, rows: Sequence[Any], store: Optional[str]
    ) -> IngestOutcome:
        reply = self._round_trip(("ingest", list(rows), store))
        if reply[0] == "ok":
            try:
                self._subscriber.refresh()
            except ShmError:
                # The stamp watcher will catch up; the ingest itself
                # is already durable in the parent.
                logger.exception("post-ingest refresh failed")
            return reply[1]
        raise _reconstruct_error(reply[1], reply[2])

    def metrics_text(self) -> str:
        reply = self._round_trip(("metrics",))
        if reply[0] == "ok":
            return reply[1]
        raise _reconstruct_error(reply[1], reply[2])


def _bind_listen_socket(
    host: str, port: int, reuse_port: bool
) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(128)
    except BaseException:
        sock.close()
        raise
    return sock


def _worker_main(
    slot: int,
    token: str,
    config: ServiceConfig,
    lsock: Optional[socket.socket],
    bind_address: Optional[Tuple[str, int]],
    req_conn: Connection,
    cmd_conn: Connection,
) -> None:
    """Body of one forked worker; never returns (``os._exit``).

    Exits 0 on a graceful drain, non-zero on a startup failure so the
    parent's monitor can tell a crash from a clean shutdown.
    """
    code = 1
    try:
        set_worker_id(slot)
        subscriber = SnapshotSubscriber(token, slot=slot)
        subscriber.connect(timeout=30.0)
        subscriber.refresh()
        stores = subscriber.stores()
        trace_path = (
            f"{config.trace_log_path}.w{slot}"
            if config.trace_log_path
            else None
        )
        worker_config = replace(
            config, wal_dir=None, trace_log_path=trace_path
        )
        engine = ComparisonEngine(worker_config)
        for name in sorted(stores):
            engine.add_store(stores[name], name=name)
        proxy = _ParentProxy(req_conn, subscriber)
        engine.set_ingest_forwarder(proxy.ingest)

        if bind_address is not None:
            if lsock is not None:
                lsock.close()
            sock = _bind_listen_socket(*bind_address, reuse_port=True)
        else:
            assert lsock is not None
            sock = lsock
        server = ComparisonHTTPServer(engine, sock=sock)
        server.metrics_text_provider = proxy.metrics_text
        server.health_extra = lambda: {
            "worker": slot,
            "pid": os.getpid(),
            "worker_procs": config.worker_procs,
            "snapshot_generation": subscriber.generation,
        }

        stopping = threading.Event()

        def _on_signal(signum: int, frame: object) -> None:
            if stopping.is_set():
                return
            stopping.set()
            threading.Thread(
                target=server.shutdown,
                name="repro-worker-shutdown",
                daemon=True,
            ).start()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

        def _watch_stamp() -> None:
            while not stopping.wait(STAMP_POLL_SECONDS):
                try:
                    if subscriber.stale():
                        subscriber.refresh()
                except ShmError:
                    # Publisher gone (parent shutting down) — the
                    # worker keeps serving its installed generation
                    # until its own SIGTERM arrives.
                    return

        def _serve_commands() -> None:
            while True:
                try:
                    message = cmd_conn.recv()
                except (EOFError, OSError):
                    return
                if message[0] == "dump":
                    try:
                        cmd_conn.send(
                            ("dump", message[1],
                             engine.metrics.registry.dump())
                        )
                    except (EOFError, OSError):
                        return

        threading.Thread(
            target=_watch_stamp, name="repro-stamp-watch", daemon=True
        ).start()
        threading.Thread(
            target=_serve_commands, name="repro-cmd", daemon=True
        ).start()

        server.serve_forever()
        # Graceful drain: joins in-flight handler threads
        # (block_on_close), then flush the trace log on a record
        # boundary.
        server.server_close()
        if server.trace_writer is not None:
            server.trace_writer.close()
        engine.shutdown(wait=True)
        subscriber.close()
        code = 0
    except Exception:
        logger.exception("worker %d failed", slot)
        code = 70  # EX_SOFTWARE
    finally:
        # _exit, not sys.exit: the child inherited the parent's WAL
        # and trace-log descriptors, and flushing their buffers here
        # would duplicate the parent's writes.
        os._exit(code)


class _WorkerHandle:
    """Parent-side bookkeeping for one worker slot."""

    __slots__ = ("slot", "pid", "req_conn", "cmd_conn", "cmd_lock",
                 "cmd_seq", "thread")

    def __init__(
        self,
        slot: int,
        pid: int,
        req_conn: Connection,
        cmd_conn: Connection,
    ) -> None:
        self.slot = slot
        self.pid = pid
        self.req_conn = req_conn
        self.cmd_conn = cmd_conn
        self.cmd_lock = threading.Lock()
        self.cmd_seq = 0
        self.thread: Optional[threading.Thread] = None

    def close(self) -> None:
        for conn in (self.req_conn, self.cmd_conn):
            try:
                conn.close()
            except OSError:
                pass

    def request_dump(self, timeout: float) -> Optional[List[dict]]:
        """One metrics-dump round trip (``None`` on a dead worker)."""
        with self.cmd_lock:
            self.cmd_seq += 1
            seq = self.cmd_seq
            try:
                # Drain any reply a previously timed-out request left
                # behind so sequence numbers stay aligned.
                while self.cmd_conn.poll(0):
                    self.cmd_conn.recv()
                self.cmd_conn.send(("dump", seq))
                deadline = time.monotonic() + timeout
                while time.monotonic() < deadline:
                    if not self.cmd_conn.poll(0.05):
                        continue
                    reply = self.cmd_conn.recv()
                    if reply[0] == "dump" and reply[1] == seq:
                        return reply[2]
            except (EOFError, OSError):
                return None
        return None


class _PreforkSupervisor:
    """The parent process: publisher, single writer, and babysitter."""

    def __init__(
        self, engine: ComparisonEngine, config: ServiceConfig
    ) -> None:
        if not hasattr(os, "fork"):
            raise PreforkError(
                "worker_procs > 1 needs os.fork (POSIX); this "
                "platform cannot pre-fork"
            )
        if not engine.store_names():
            raise PreforkError(
                "no stores registered; nothing to publish to workers"
            )
        self._engine = engine
        self._config = config
        self._publisher = SnapshotPublisher(slots=config.worker_procs)
        self._publish_lock = threading.Lock()
        self._published_sig: Optional[Tuple] = None
        self._stop = threading.Event()
        self._handles: Dict[int, _WorkerHandle] = {}
        self._handles_lock = threading.Lock()
        self._reuse_port = bool(
            config.reuse_port and hasattr(socket, "SO_REUSEPORT")
        )
        if config.reuse_port and not self._reuse_port:
            print(
                "note: SO_REUSEPORT unavailable; workers share the "
                "parent's listen socket"
            )
        self._lsock: Optional[socket.socket] = _bind_listen_socket(
            config.host, config.port, reuse_port=self._reuse_port
        )
        self._address = self._lsock.getsockname()[:2]

    # -- publication ----------------------------------------------------

    def _generation_signature(self) -> Tuple:
        stores = self._engine.stores()
        out = []
        for name in sorted(stores):
            generation = stores[name].generation
            if isinstance(generation, (list, tuple)):
                generation = tuple(generation)
            out.append((name, generation))
        return tuple(out)

    def publish(self) -> None:
        """Publish the stores unless nothing changed since last time."""
        with self._publish_lock:
            signature = self._generation_signature()
            if signature == self._published_sig:
                return
            self._publisher.publish(
                self._engine.stores(), wal_seqs=self._engine.wal_seqs()
            )
            self._published_sig = signature

    # -- the single writer ----------------------------------------------

    def _handle_ingest(
        self, rows: Sequence[Any], store: Optional[str]
    ) -> Tuple[Any, ...]:
        try:
            outcome = self._engine.ingest(rows, store=store)
        except IngestOverloaded as exc:
            return ("err", "overloaded",
                    (exc.store, exc.retry_after, exc.backlog))
        except StoreUnavailable as exc:
            return ("err", "unavailable", (exc.store, exc.retry_after))
        except DeadlineExceeded as exc:
            return ("err", "deadline", (str(exc), exc.deadline_ms))
        except UnknownStoreError as exc:
            return ("err", "unknown_store", (str(exc),))
        except WalError as exc:
            return ("err", "wal", (str(exc),))
        except (ValueError, KeyError) as exc:
            message = str(exc) or exc.__class__.__name__
            if isinstance(exc, KeyError) and exc.args:
                message = str(exc.args[0])
            return ("err", "bad_request", (message,))
        except Exception:
            logger.exception("forwarded ingest failed")
            return ("err", "internal", ("internal server error",))
        # Republish before acknowledging: when the worker sees "ok",
        # the new generation is already attachable.
        try:
            self.publish()
        except ShmError:
            logger.exception("republish after ingest failed")
        return ("ok", outcome)

    def _merged_metrics_text(self) -> Tuple[Any, ...]:
        dumps = [self._engine.metrics.registry.dump()]
        with self._handles_lock:
            handles = list(self._handles.values())
        for handle in handles:
            dump = handle.request_dump(timeout=2.0)
            if dump is not None:
                dumps.append(dump)
        try:
            return ("ok", merge_dumps(dumps).render())
        except ValueError as exc:
            return ("err", "internal", (str(exc),))

    def _serve_requests(self, handle: _WorkerHandle) -> None:
        """Dedicated parent thread draining one worker's request pipe."""
        conn = handle.req_conn
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message[0] == "ingest":
                reply = self._handle_ingest(message[1], message[2])
            elif message[0] == "metrics":
                reply = self._merged_metrics_text()
            else:
                reply = ("err", "bad_request",
                         (f"unknown request {message[0]!r}",))
            try:
                conn.send(reply)
            except (EOFError, OSError, BrokenPipeError):
                return

    # -- process management ---------------------------------------------

    def _spawn(self, slot: int) -> None:
        req_parent, req_child = Pipe(duplex=True)
        cmd_parent, cmd_child = Pipe(duplex=True)
        with self._handles_lock:
            inherited = list(self._handles.values())
        pid = os.fork()
        if pid == 0:
            # Child: drop every descriptor that belongs to the parent
            # or to sibling workers, then serve.
            req_parent.close()
            cmd_parent.close()
            for sibling in inherited:
                sibling.close()
            _worker_main(
                slot,
                self._publisher.token,
                self._config,
                self._lsock,
                self._address if self._reuse_port else None,
                req_child,
                cmd_child,
            )
            os._exit(70)  # unreachable; _worker_main never returns
        req_child.close()
        cmd_child.close()
        handle = _WorkerHandle(slot, pid, req_parent, cmd_parent)
        handle.thread = threading.Thread(
            target=self._serve_requests,
            args=(handle,),
            name=f"repro-worker-{slot}-req",
            daemon=True,
        )
        handle.thread.start()
        with self._handles_lock:
            self._handles[slot] = handle

    def _reap_and_respawn(self) -> None:
        with self._handles_lock:
            handles = list(self._handles.values())
        for handle in handles:
            try:
                pid, status = os.waitpid(handle.pid, os.WNOHANG)
            except ChildProcessError:
                pid, status = handle.pid, -1
            if pid == 0:
                continue
            if self._stop.is_set():
                continue
            logger.warning(
                "worker %d (pid %d) died (status %s); respawning",
                handle.slot, handle.pid, status,
            )
            handle.close()
            with self._handles_lock:
                self._handles.pop(handle.slot, None)
            self._spawn(handle.slot)

    def _terminate_workers(self) -> None:
        with self._handles_lock:
            handles = list(self._handles.values())
        for handle in handles:
            try:
                os.kill(handle.pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + DRAIN_TIMEOUT_SECONDS
        pending = {h.pid: h for h in handles}
        while pending and time.monotonic() < deadline:
            for pid in list(pending):
                try:
                    reaped, _ = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    reaped = pid
                if reaped:
                    pending.pop(pid, None)
            if pending:
                time.sleep(0.05)
        for pid, handle in pending.items():
            logger.warning(
                "worker %d (pid %d) did not drain in %.0fs; killing",
                handle.slot, pid, DRAIN_TIMEOUT_SECONDS,
            )
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
        for handle in handles:
            handle.close()
        with self._handles_lock:
            self._handles.clear()

    # -- lifecycle ------------------------------------------------------

    def run(self) -> None:
        """Publish, fork, babysit; returns after graceful shutdown."""
        config = self._config
        self.publish()
        url_host = self._address[0]
        if url_host in ("", "0.0.0.0"):
            url_host = "127.0.0.1"
        url = f"http://{url_host}:{self._address[1]}"
        for slot in range(config.worker_procs):
            self._spawn(slot)
        if self._reuse_port:
            # Every worker bound its own SO_REUSEPORT socket; keeping
            # the parent's open would park connections in a queue
            # nobody accepts from.
            assert self._lsock is not None
            self._lsock.close()
            self._lsock = None
        logger.info(
            "pre-fork serving on %s with %d workers (shm token %s)",
            url, config.worker_procs, self._publisher.token,
        )
        print(
            f"repro service listening on {url} "
            f"({config.worker_procs} worker processes, "
            f"{'SO_REUSEPORT' if self._reuse_port else 'shared socket'}"
            f", shm token {self._publisher.token})",
            flush=True,
        )

        def _request_stop(signum: int, frame: object) -> None:
            self._stop.set()

        previous: Dict[int, object] = {}
        if threading.current_thread() is threading.main_thread():
            for sig in (signal.SIGINT, signal.SIGTERM):
                previous[sig] = signal.signal(sig, _request_stop)
        try:
            while not self._stop.is_set():
                self._reap_and_respawn()
                self._stop.wait(0.2)
        except KeyboardInterrupt:
            self._stop.set()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)  # type: ignore[arg-type]
            self._terminate_workers()
            if self._lsock is not None:
                self._lsock.close()
                self._lsock = None
            self._publisher.close()
            self._engine.shutdown()
            self._engine.close_wals()
            logger.info("pre-fork supervisor stopped")


def serve_prefork(
    engine: ComparisonEngine, config: Optional[ServiceConfig] = None
) -> None:
    """Blocking pre-fork entry point (``repro serve --worker-procs N``).

    ``engine`` must hold fully materialised stores (precomputed cubes
    plus the class-distribution cube, which the publisher force-builds
    itself); workers never count from raw rows.
    """
    config = config or engine.config
    _PreforkSupervisor(engine, config).run()

"""A retrying HTTP client for the comparison service.

The paper's system is interactive — an engineer at a console — so a
transient server-side hiccup (a deadline overrun, an open circuit
breaker, a dropped connection) should cost a short, bounded wait, not
a stack trace in the analyst's face and not a retry storm against an
already-struggling store.  This client implements the standard
discipline:

* **exponential backoff with jitter** between attempts, so a fleet of
  clients that failed together does not retry together;
* **server hints win**: a ``Retry-After`` header or ``retry_after``
  body field (the breaker's cool-down) replaces the computed backoff,
  and the ``deadline_ms`` a 503 deadline-overrun body reports is used
  to budget — a retry is only worth launching if the remaining budget
  could actually absorb another full server-side deadline;
* **deadline budgets**: every public call takes/inherits a total
  budget in milliseconds; when backoff-plus-expected-work no longer
  fits, the client stops early with :class:`BudgetExhausted` carrying
  the full attempt history.

Transport, clock and sleep are injectable, so the retry logic is unit
tested deterministically without sockets; the default transport is
stdlib ``urllib`` against a live server.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple
from urllib.parse import urlsplit

from .coerce import as_number

__all__ = [
    "RetryPolicy",
    "Attempt",
    "ClientError",
    "NonFiniteResponse",
    "ServerError",
    "BudgetExhausted",
    "ServiceClient",
    "KeepAliveTransport",
]

#: Status codes worth retrying: overload/unavailability — including
#: 429 (ingest admission control), whose Retry-After hint says when
#: the backlog should have drained — never other 4xx.
RETRYABLE_STATUSES = frozenset({429, 502, 503, 504})


class NonFiniteResponse(ValueError):
    """The server emitted ``NaN``/``Infinity``/``-Infinity`` literals.

    Those are not JSON; a server with the sanitizing encoder never
    produces them (non-finite values arrive as ``null`` plus a
    ``"non_finite": true`` marker).  Seeing one means the peer is a
    pre-fix server — surface it loudly instead of silently parsing
    the invalid body the way bare ``json.loads`` would.
    """


def _reject_non_finite(literal: str) -> float:
    raise NonFiniteResponse(
        f"server response contains the invalid JSON literal "
        f"{literal!r}; strict JSON has no non-finite numbers"
    )


class ClientError(RuntimeError):
    """A non-retryable (4xx) response; carries the parsed error body."""

    def __init__(self, status: int, body: Dict[str, Any]) -> None:
        super().__init__(
            f"HTTP {status}: {body.get('error', 'request failed')}"
        )
        self.status = status
        self.body = body


class Attempt(NamedTuple):
    """One attempt in a call's history (for errors and debugging)."""

    status: Optional[int]  #: HTTP status, None for transport errors
    error: str  #: short description of why the attempt failed
    waited: float  #: seconds slept *before* this attempt


class ServerError(RuntimeError):
    """All attempts failed with retryable errors."""

    def __init__(self, message: str, attempts: List[Attempt]) -> None:
        super().__init__(message)
        self.attempts = attempts


class BudgetExhausted(ServerError):
    """The deadline budget ran out before the attempts did."""


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff shape: ``base * multiplier**n``, capped, plus jitter.

    ``jitter`` is the fraction of the delay drawn uniformly at random
    and *added* (0.5 → delay in [d, 1.5 d]).  ``seed`` pins the jitter
    stream for reproducible tests; ``None`` seeds from the OS.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = min(
            self.base_delay * (self.multiplier ** (attempt - 1)),
            self.max_delay,
        )
        return raw * (1.0 + self.jitter * rng.random())


def _urllib_transport(
    method: str, url: str, body: Optional[bytes], timeout: float
):
    """One-shot transport: a fresh socket per request.

    Kept for callers that must not hold connections (and as the
    reference implementation of the transport contract); the default
    is :class:`KeepAliveTransport`.
    """
    request = urllib.request.Request(
        url,
        data=body,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers or {}), exc.read()


class KeepAliveTransport:
    """The default transport: persistent HTTP/1.1 connections.

    One ``http.client.HTTPConnection`` per ``(host, port)`` *per
    thread* (thread-local, so handler threads in a load generator
    never share a socket).  A fresh socket per request was dominating
    client-side latency in the throughput bench — connect + slow-start
    cost more than the small JSON exchange it carried — and, against
    the pre-fork server, re-dialling also hops between worker
    processes, losing read-your-writes after an ingest.

    A request that fails on a *reused* connection is retried once on a
    fresh one: the server (or an idle timeout) closed the connection
    between requests, which a keep-alive client cannot distinguish
    from a request-in-flight failure until it re-dials.  Failures on a
    fresh connection propagate as ``OSError`` per the transport
    contract, feeding the :class:`ServiceClient` retry loop.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def _connections(
        self,
    ) -> Dict[Tuple[str, int], http.client.HTTPConnection]:
        conns = getattr(self._local, "conns", None)
        if conns is None:
            conns = self._local.conns = {}
        return conns

    def _drop(self, key: Tuple[str, int]) -> None:
        conn = self._connections().pop(key, None)
        if conn is not None:
            conn.close()

    def close(self) -> None:
        """Close this thread's pooled connections."""
        conns = self._connections()
        for conn in conns.values():
            conn.close()
        conns.clear()

    def __call__(
        self, method: str, url: str, body: Optional[bytes],
        timeout: float,
    ):
        parts = urlsplit(url)
        host = parts.hostname or "127.0.0.1"
        port = parts.port or 80
        path = parts.path or "/"
        if parts.query:
            path = f"{path}?{parts.query}"
        key = (host, port)
        headers = {"Content-Type": "application/json"}
        conns = self._connections()
        for attempt in (0, 1):
            conn = conns.get(key)
            reused = conn is not None
            if conn is None:
                conn = http.client.HTTPConnection(
                    host, port, timeout=timeout
                )
                conns[key] = conn
            else:
                conn.timeout = timeout
                if conn.sock is not None:
                    conn.sock.settimeout(timeout)
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                return response.status, dict(response.headers), raw
            except (http.client.HTTPException, OSError) as exc:
                self._drop(key)
                if reused and attempt == 0:
                    continue  # stale keep-alive socket; re-dial once
                if isinstance(exc, OSError):
                    raise
                raise OSError(str(exc) or type(exc).__name__) from exc
        raise OSError("unreachable")  # pragma: no cover


class ServiceClient:
    """Typed access to the comparison service with retries.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running service.
    policy:
        The :class:`RetryPolicy`; the default retries 4 times over
        ~±0.5 s.
    budget_ms:
        Default total budget per call (wall clock spent on attempts
        plus waits); ``None`` means unbounded.  Every public method
        accepts a per-call override.
    transport / sleep / clock:
        Injection points for tests.  ``transport(method, url, body,
        timeout)`` must return ``(status, headers, raw_body)`` or
        raise ``OSError``/``urllib.error.URLError`` for transport
        failures (which are retryable).  The default is a fresh
        :class:`KeepAliveTransport` — persistent connections, reused
        across calls, thread-local per pooled socket.
    """

    def __init__(
        self,
        base_url: str,
        policy: Optional[RetryPolicy] = None,
        budget_ms: Optional[float] = None,
        transport: Optional[Callable] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.policy = policy or RetryPolicy()
        self.budget_ms = budget_ms
        self._transport = (
            transport if transport is not None else KeepAliveTransport()
        )
        self._sleep = sleep
        self._clock = clock
        self._rng = random.Random(self.policy.seed)
        #: deadline_ms the server last reported in a 503 body; used to
        #: decide whether a retry can still fit in the budget.
        self.last_server_deadline_ms: Optional[float] = None
        #: request_id of the last response body seen (success or error),
        #: so a caller can quote it when filing a slow/failed request
        #: against the server's ``/debug/traces`` buffer or trace log.
        self.last_request_id: Optional[str] = None

    # -- core retry loop ------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        budget_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One logical call: retries retryable failures under budget."""
        if budget_ms is None:
            budget_ms = self.budget_ms
        url = self.base_url + path
        body = (
            None
            if payload is None
            else json.dumps(payload).encode("utf-8")
        )
        started = self._clock()
        attempts: List[Attempt] = []
        wait = 0.0
        for attempt in range(1, self.policy.max_attempts + 1):
            if wait > 0:
                self._sleep(wait)
            # Per-attempt socket timeout: the remaining budget, else a
            # generous constant.
            if budget_ms is None:
                timeout = 60.0
            else:
                remaining = budget_ms / 1000.0 - (
                    self._clock() - started
                )
                if remaining <= 0:
                    raise BudgetExhausted(
                        f"budget of {budget_ms} ms exhausted after "
                        f"{len(attempts)} attempt(s)",
                        attempts,
                    )
                timeout = remaining
            try:
                status, headers, raw = self._transport(
                    method, url, body, timeout
                )
            except (OSError, urllib.error.URLError) as exc:
                attempts.append(Attempt(None, str(exc), wait))
                wait = self._next_wait(
                    attempt, None, {}, budget_ms, started, attempts
                )
                continue
            parsed = self._parse(raw)
            if isinstance(parsed.get("request_id"), str):
                self.last_request_id = parsed["request_id"]
            if status < 400:
                return parsed
            if status in RETRYABLE_STATUSES:
                deadline_hint = as_number(parsed.get("deadline_ms"))
                if deadline_hint is not None:
                    self.last_server_deadline_ms = deadline_hint
                attempts.append(
                    Attempt(
                        status,
                        str(parsed.get("error", f"HTTP {status}")),
                        wait,
                    )
                )
                wait = self._next_wait(
                    attempt, headers, parsed, budget_ms, started,
                    attempts,
                )
                continue
            raise ClientError(status, parsed)
        raise ServerError(
            f"{method} {path} failed after "
            f"{self.policy.max_attempts} attempts "
            f"(last: {attempts[-1].error})",
            attempts,
        )

    def _next_wait(
        self,
        attempt: int,
        headers: Optional[Dict[str, str]],
        parsed: Dict[str, Any],
        budget_ms: Optional[float],
        started: float,
        attempts: List[Attempt],
    ) -> float:
        """Delay before the next attempt; raises when it cannot fit."""
        if attempt >= self.policy.max_attempts:
            return 0.0  # no further attempt; the loop will exit
        wait = self.policy.delay(attempt, self._rng)
        # The server knows its own cool-down better than our backoff.
        hinted = self._server_hint(headers, parsed)
        if hinted is not None:
            wait = max(wait, hinted)
        if budget_ms is not None:
            remaining = budget_ms / 1000.0 - (self._clock() - started)
            # A retry only helps if, after waiting, a full server-side
            # deadline could still elapse inside the budget.
            needed = wait
            if self.last_server_deadline_ms is not None:
                needed += self.last_server_deadline_ms / 1000.0
            if needed >= remaining:
                raise BudgetExhausted(
                    f"retry needs {needed * 1000:.0f} ms "
                    f"(wait + server deadline) but only "
                    f"{max(remaining, 0) * 1000:.0f} ms of the "
                    f"{budget_ms} ms budget remain",
                    attempts,
                )
        return wait

    @staticmethod
    def _server_hint(
        headers: Optional[Dict[str, str]], parsed: Dict[str, Any]
    ) -> Optional[float]:
        # as_number, not isinstance(..., (int, float)): bool is an int
        # subclass, so a body with "retry_after": true used to be read
        # as a 1-second cool-down instead of being ignored.
        hinted = as_number(parsed.get("retry_after"))
        if hinted is not None:
            return hinted
        for name, value in (headers or {}).items():
            if name.lower() == "retry-after":
                try:
                    return float(value)
                except ValueError:
                    return None
        return None

    @staticmethod
    def _parse(raw: bytes) -> Dict[str, Any]:
        try:
            parsed = json.loads(
                raw.decode("utf-8"), parse_constant=_reject_non_finite
            )
        except NonFiniteResponse:
            raise  # protocol violation, not a malformed-body shrug
        except (UnicodeDecodeError, json.JSONDecodeError):
            return {"error": raw[:200].decode("utf-8", "replace")}
        if not isinstance(parsed, dict):
            return {"error": "non-object response body"}
        return parsed

    # -- endpoint wrappers ----------------------------------------------

    @staticmethod
    def _compare_payload(
        pivot: str,
        value_a: str,
        value_b: str,
        target_class: str,
        store_a: Optional[str],
        store_b: Optional[str],
        extra: Dict[str, Any],
    ) -> Dict[str, Any]:
        payload = {
            "pivot": pivot,
            "value_a": value_a,
            "value_b": value_b,
            "target_class": target_class,
            **extra,
        }
        if store_a is not None:
            payload["store_a"] = store_a
        if store_b is not None:
            payload["store_b"] = store_b
        return payload

    def compare(
        self,
        pivot: str,
        value_a: str,
        value_b: str,
        target_class: str,
        budget_ms: Optional[float] = None,
        store_a: Optional[str] = None,
        store_b: Optional[str] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        """One comparison; pass ``store_a=``/``store_b=`` (both, per
        the server contract) for a cross-store request.  Retry and
        ``Retry-After`` semantics are :meth:`request`'s, cross-store
        or not."""
        payload = self._compare_payload(
            pivot, value_a, value_b, target_class, store_a, store_b,
            extra,
        )
        return self.request(
            "POST", "/compare", payload, budget_ms=budget_ms
        )

    def rank(
        self,
        pivot: str,
        value_a: str,
        value_b: str,
        target_class: str,
        budget_ms: Optional[float] = None,
        store_a: Optional[str] = None,
        store_b: Optional[str] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        payload = self._compare_payload(
            pivot, value_a, value_b, target_class, store_a, store_b,
            extra,
        )
        return self.request(
            "POST", "/rank", payload, budget_ms=budget_ms
        )

    def explain(
        self,
        pivot: str,
        value_a: str,
        value_b: str,
        target_class: str,
        attribute: str,
        top: Optional[int] = None,
        budget_ms: Optional[float] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        """Why ``attribute`` ranks where it does for this comparison.

        Pass ``measure=`` / ``store=`` / ``attributes=`` via ``extra``
        exactly as for :meth:`compare`; ``top`` bounds the number of
        contributing values returned (server default 3)."""
        payload = self._compare_payload(
            pivot, value_a, value_b, target_class, None, None, extra,
        )
        payload["attribute"] = attribute
        if top is not None:
            payload["top"] = top
        return self.request(
            "POST", "/explain", payload, budget_ms=budget_ms
        )

    def ingest(
        self,
        rows: List[Any],
        store: Optional[str] = None,
        budget_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"rows": rows}
        if store is not None:
            payload["store"] = store
        return self.request(
            "POST", "/ingest", payload, budget_ms=budget_ms
        )

    def health(self, budget_ms: Optional[float] = None) -> Dict[str, Any]:
        return self.request("GET", "/healthz", budget_ms=budget_ms)

    def cubes(self, budget_ms: Optional[float] = None) -> Dict[str, Any]:
        return self.request("GET", "/cubes", budget_ms=budget_ms)

    def debug_traces(
        self, budget_ms: Optional[float] = None
    ) -> Dict[str, Any]:
        """The server's retained trace buffer (recent + slowest)."""
        return self.request("GET", "/debug/traces", budget_ms=budget_ms)

    def close(self) -> None:
        """Close pooled transport connections (no-op for one-shots)."""
        closer = getattr(self._transport, "close", None)
        if callable(closer):
            closer()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServiceClient({self.base_url!r}, "
            f"{self.policy.max_attempts} attempts, "
            f"budget={self.budget_ms} ms)"
        )

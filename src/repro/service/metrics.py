"""Service metrics: counters and latency histograms.

The serving layer needs the three classic signals — traffic, errors,
latency — plus cache effectiveness, without pulling in a client
library.  This module implements labelled counters and fixed-bucket
histograms with a Prometheus text-format exposition
(``GET /metrics``), stdlib only.

All metric objects are thread-safe: the engine's worker pool and the
HTTP server's handler threads update them concurrently.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ServiceMetrics",
    "DEFAULT_LATENCY_BUCKETS",
    "service_metrics",
    "merge_dumps",
]

#: Latency buckets in seconds — spans sub-millisecond cache hits up to
#: multi-second cold fleet screens.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _render_labels(key: _LabelKey, extra: str = "") -> str:
    parts = [f'{name}="{_escape(value)}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    return str(as_int) if as_int == value else repr(value)


class Counter:
    """A monotonically increasing labelled counter."""

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help_text = help_text
        self._values: Dict[_LabelKey, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (default 1) to the labelled series."""
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of one labelled series (0 when unseen)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every labelled series."""
        with self._lock:
            return sum(self._values.values())

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} counter",
        ]
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            lines.append(
                f"{self.name}{_render_labels(key)} {_format_value(value)}"
            )
        return lines

    def dump(self) -> Dict[str, object]:
        """A JSON/pickle-safe snapshot for cross-process aggregation."""
        with self._lock:
            values = [
                [list(map(list, key)), value]
                for key, value in self._values.items()
            ]
        return {
            "kind": "counter",
            "name": self.name,
            "help": self.help_text,
            "values": values,
        }

    def load(self, dump: Mapping[str, object]) -> None:
        """Merge a :meth:`dump` into this counter (values add)."""
        with self._lock:
            for raw_key, value in dump["values"]:  # type: ignore[index]
                key = tuple(tuple(pair) for pair in raw_key)
                self._values[key] = (
                    self._values.get(key, 0.0) + float(value)
                )


class Gauge:
    """A labelled value that can go up and down (backlog, pins, ...)."""

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help_text = help_text
        self._values: Dict[_LabelKey, float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels: str) -> None:
        """Set the labelled series to ``value``."""
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (default 1, may be negative) to the series."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Subtract ``amount`` (default 1) from the labelled series."""
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        """Current value of one labelled series (0 when unseen)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} gauge",
        ]
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            lines.append(
                f"{self.name}{_render_labels(key)} {_format_value(value)}"
            )
        return lines

    def dump(self) -> Dict[str, object]:
        """A JSON/pickle-safe snapshot for cross-process aggregation."""
        with self._lock:
            values = [
                [list(map(list, key)), value]
                for key, value in self._values.items()
            ]
        return {
            "kind": "gauge",
            "name": self.name,
            "help": self.help_text,
            "values": values,
        }

    def load(self, dump: Mapping[str, object]) -> None:
        """Merge a :meth:`dump` into this gauge.

        Gauges *add* on merge: the fleet-wide backlog (or pin count)
        is the sum of every process's, and a process that never set a
        series contributes zero.
        """
        with self._lock:
            for raw_key, value in dump["values"]:  # type: ignore[index]
                key = tuple(tuple(pair) for pair in raw_key)
                self._values[key] = (
                    self._values.get(key, 0.0) + float(value)
                )


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0


class Histogram:
    """A labelled fixed-bucket histogram (cumulative on render).

    Buckets are upper bounds in ascending order; an implicit ``+Inf``
    bucket catches the tail, so ``observe`` never loses a sample.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                "buckets must be a non-empty strictly increasing sequence"
            )
        self.name = name
        self.help_text = help_text
        self.buckets = bounds
        self._series: Dict[_LabelKey, _HistogramSeries] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, **labels: str) -> None:
        """Record one sample in the labelled series."""
        key = _label_key(labels)
        # Index of the first bucket whose bound holds the value; one
        # past the end means the +Inf overflow bucket.
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets) + 1)
                self._series[key] = series
            series.bucket_counts[idx] += 1
            series.total += value
            series.count += 1

    def count(self, **labels: str) -> int:
        """Number of samples in one labelled series."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series else 0

    def sum(self, **labels: str) -> float:
        """Sum of all samples in one labelled series (0 when unseen)."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.total if series else 0.0

    def quantile(self, q: float, **labels: str) -> Optional[float]:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket holding the q-th sample); ``None`` with no samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return None
            rank = q * series.count
            seen = 0
            for i, n in enumerate(series.bucket_counts):
                seen += n
                if seen >= rank and n:
                    if i < len(self.buckets):
                        return self.buckets[i]
                    return float("inf")
            return float("inf")

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} histogram",
        ]
        with self._lock:
            items = sorted(
                (key, list(s.bucket_counts), s.total, s.count)
                for key, s in self._series.items()
            )
        for key, bucket_counts, total, count in items:
            cumulative = 0
            for bound, n in zip(
                list(self.buckets) + [float("inf")], bucket_counts
            ):
                cumulative += n
                le = _render_labels(
                    key, f'le="{_format_value(bound)}"'
                )
                lines.append(
                    f"{self.name}_bucket{le} {cumulative}"
                )
            labels = _render_labels(key)
            lines.append(f"{self.name}_sum{labels} {repr(total)}")
            lines.append(f"{self.name}_count{labels} {count}")
        return lines

    def dump(self) -> Dict[str, object]:
        """A JSON/pickle-safe snapshot for cross-process aggregation."""
        with self._lock:
            series = [
                [list(map(list, key)), list(s.bucket_counts),
                 s.total, s.count]
                for key, s in self._series.items()
            ]
        return {
            "kind": "histogram",
            "name": self.name,
            "help": self.help_text,
            "buckets": list(self.buckets),
            "series": series,
        }

    def load(self, dump: Mapping[str, object]) -> None:
        """Merge a :meth:`dump` into this histogram (bucket-wise add).

        The dumped bucket bounds must match this histogram's — two
        processes built from the same :class:`ServiceMetrics` always
        agree, and anything else would silently mis-bin samples.
        """
        bounds = tuple(float(b) for b in dump["buckets"])  # type: ignore[index]
        if bounds != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds differ "
                "between processes; refusing to merge"
            )
        with self._lock:
            for raw_key, bucket_counts, total, count in dump["series"]:  # type: ignore[index]
                key = tuple(tuple(pair) for pair in raw_key)
                series = self._series.get(key)
                if series is None:
                    series = _HistogramSeries(len(self.buckets) + 1)
                    self._series[key] = series
                for i, n in enumerate(bucket_counts):
                    series.bucket_counts[i] += int(n)
                series.total += float(total)
                series.count += int(count)


class MetricsRegistry:
    """A named collection of metrics with one text exposition."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help_text: str) -> Counter:
        """Get or create the counter ``name``."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Counter(name, help_text)
                self._metrics[name] = metric
            elif not isinstance(metric, Counter):
                raise ValueError(f"{name!r} is already a non-counter")
            return metric

    def gauge(self, name: str, help_text: str) -> Gauge:
        """Get or create the gauge ``name``."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Gauge(name, help_text)
                self._metrics[name] = metric
            elif not isinstance(metric, Gauge):
                raise ValueError(f"{name!r} is already a non-gauge")
            return metric

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, help_text, buckets)
                self._metrics[name] = metric
            elif not isinstance(metric, Histogram):
                raise ValueError(f"{name!r} is already a non-histogram")
            return metric

    def names(self) -> Iterable[str]:
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """The full Prometheus text exposition (``text/plain``)."""
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())  # type: ignore[attr-defined]
        return "\n".join(lines) + "\n"

    def dump(self) -> List[Dict[str, object]]:
        """Every metric's :meth:`dump`, for shipping across processes.

        The pre-fork serving tier sends worker dumps over a pipe to
        the parent, which folds them together with
        :func:`merge_dumps` so ``GET /metrics`` shows fleet totals.
        """
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        return [m.dump() for m in metrics]  # type: ignore[attr-defined]


def merge_dumps(
    dumps: Iterable[List[Dict[str, object]]],
) -> MetricsRegistry:
    """Fold per-process registry dumps into one fresh registry.

    Counters and histograms add sample-wise; gauges add series-wise
    (a fleet backlog is the sum of per-process backlogs).  Metrics
    absent from some processes merge from the ones that have them.
    """
    merged = MetricsRegistry()
    for registry_dump in dumps:
        for metric_dump in registry_dump:
            kind = metric_dump["kind"]
            name = str(metric_dump["name"])
            help_text = str(metric_dump["help"])
            if kind == "counter":
                merged.counter(name, help_text).load(metric_dump)
            elif kind == "gauge":
                merged.gauge(name, help_text).load(metric_dump)
            elif kind == "histogram":
                merged.histogram(
                    name, help_text,
                    buckets=metric_dump["buckets"],  # type: ignore[arg-type]
                ).load(metric_dump)
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
    return merged


class ServiceMetrics:
    """The serving layer's standard instrument panel."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry or MetricsRegistry()
        self.requests = self.registry.counter(
            "repro_requests_total",
            "HTTP requests by endpoint and status code.",
        )
        self.latency = self.registry.histogram(
            "repro_request_latency_seconds",
            "Comparison latency by endpoint, seconds.",
        )
        self.cache_hits = self.registry.counter(
            "repro_cache_hits_total",
            "Comparison results served from the LRU cache.",
        )
        self.cache_misses = self.registry.counter(
            "repro_cache_misses_total",
            "Comparison results computed on a cache miss.",
        )
        self.cache_evictions = self.registry.counter(
            "repro_cache_evictions_total",
            "Cache entries evicted (capacity pressure or staleness).",
        )
        self.deadline_exceeded = self.registry.counter(
            "repro_deadline_exceeded_total",
            "Requests that overran the per-request deadline.",
        )
        self.ingested_records = self.registry.counter(
            "repro_ingested_records_total",
            "Records absorbed through /ingest, by store.",
        )
        self.ingest_batch_rows = self.registry.histogram(
            "repro_ingest_batch_rows",
            "Row count of absorbed ingest batches (post-coalescing), "
            "by store.",
            buckets=(1, 10, 100, 1_000, 10_000, 100_000, 1_000_000),
        )
        self.ingest_absorb_seconds = self.registry.histogram(
            "repro_ingest_absorb_seconds",
            "Wall-clock time of one store absorb (delta counting + "
            "snapshot swap), by store, seconds.",
        )
        self.compare_failures = self.registry.counter(
            "repro_compare_failures_total",
            "Comparison computes that failed, by store and error type "
            "(domain errors such as unknown attributes excluded).",
        )
        self.breaker_transitions = self.registry.counter(
            "repro_breaker_transitions_total",
            "Circuit-breaker state transitions, by store and new state.",
        )
        self.breaker_rejections = self.registry.counter(
            "repro_breaker_rejections_total",
            "Requests rejected because a store's breaker was open.",
        )
        self.fleet_pair_failures = self.registry.counter(
            "repro_fleet_pair_failures_total",
            "Fleet-screen pairs that failed and were reported as "
            "structured errors instead of aborting the screen.",
        )
        self.fleet_kernel_seconds = self.registry.histogram(
            "repro_fleet_kernel_seconds",
            "Batch fleet-screen time spent inside the vectorized "
            "scoring kernel, by store, seconds.",
        )
        self.fleet_plumbing_seconds = self.registry.histogram(
            "repro_fleet_plumbing_seconds",
            "Batch fleet-screen time spent outside the kernel (cube "
            "reads, slicing, result assembly), by store, seconds.",
        )
        self.shard_fanout = self.registry.histogram(
            "repro_shard_fanout",
            "Shards scattered to per sharded-store read, by store.",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self.shard_merge_seconds = self.registry.histogram(
            "repro_shard_merge_seconds",
            "Wall-clock time merging per-shard count tensors after a "
            "scatter-gather read, by store, seconds.",
        )
        self.wal_appends = self.registry.counter(
            "repro_wal_appends_total",
            "Batches durably appended to the write-ahead log, by "
            "store (and shard for sharded stores).",
        )
        self.wal_append_bytes = self.registry.counter(
            "repro_wal_append_bytes_total",
            "Framed bytes written to the write-ahead log, by store.",
        )
        self.wal_fsyncs = self.registry.counter(
            "repro_wal_fsyncs_total",
            "fsync calls issued by the write-ahead log (fsync=always "
            "only; batch mode flushes without syncing), by store.",
        )
        self.wal_append_seconds = self.registry.histogram(
            "repro_wal_append_seconds",
            "Wall-clock time of one WAL append (encode + write + "
            "flush/fsync), by store, seconds.",
        )
        self.wal_replayed_records = self.registry.counter(
            "repro_wal_replayed_records_total",
            "WAL records replayed into a store at startup, by store.",
        )
        self.backend_scan_seconds = self.registry.histogram(
            "repro_backend_scan_seconds",
            "Wall-clock time of one counting-backend scan (a lazy "
            "cube count or a precompute sweep), by store and backend "
            "kind, seconds.",
        )
        self.backend_rows_scanned = self.registry.counter(
            "repro_backend_rows_scanned_total",
            "Rows read by counting-backend scans, by store and "
            "backend kind; chunk-major sweeps count the row prefix "
            "once per sweep, cube-major backends once per cube.",
        )
        self.ingest_backlog = self.registry.gauge(
            "repro_ingest_backlog",
            "Ingest batches admitted but not yet absorbed, by store; "
            "admission control rejects at the high watermark.",
        )
        self.ingest_rejections = self.registry.counter(
            "repro_ingest_rejections_total",
            "Ingest batches rejected with 429 because the backlog "
            "crossed the high watermark, by store.",
        )
        self.snapshot_pinned_generations = self.registry.gauge(
            "repro_snapshot_pinned_generations",
            "Distinct store generations currently pinned by readers; "
            "pinned snapshots keep their AppendBuffer prefixes "
            "resident, by store.",
        )
        self.traces_recorded = self.registry.counter(
            "repro_traces_recorded_total",
            "Request traces recorded into the debug buffer / trace "
            "log, by endpoint.",
        )
        self.slow_requests = self.registry.counter(
            "repro_slow_requests_total",
            "Requests whose handling time reached the slow-request "
            "threshold, by endpoint.",
        )
        self.explain_requests = self.registry.counter(
            "repro_explain_requests_total",
            "Attribute explanations served (/explain and "
            "engine.explain), by store.",
        )
        self.measure_requests = self.registry.counter(
            "repro_measure_requests_total",
            "Comparison/screen requests by interestingness measure "
            "(cache hits included).",
        )

    def render(self) -> str:
        return self.registry.render()


def service_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> ServiceMetrics:
    """Build the standard metric set (optionally on a shared registry)."""
    return ServiceMetrics(registry)

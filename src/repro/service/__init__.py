"""The comparison service — the library grown into a serving system.

The paper describes a deployed split: cubes are generated off-line
("in the evening") and engineers then issue interactive comparison
queries against the warm store all day.  This package is that serving
layer:

* :mod:`repro.service.config` — one dataclass of engine/server
  settings;
* :mod:`repro.service.engine` — a thread-safe
  :class:`ComparisonEngine` owning named cube stores, a worker pool
  with per-request deadlines, a per-store circuit breaker, and a
  generation-aware LRU result cache that the incremental-ingest path
  invalidates;
* :mod:`repro.service.batch` — :func:`screen_fleet`, the fleet-wide
  pairwise sweep fanned out across the pool, degrading per-pair
  failures into a structured ledger instead of aborting;
* :mod:`repro.service.http` — a stdlib ``ThreadingHTTPServer`` with
  JSON endpoints (``/compare``, ``/rank``, ``/ingest``, ``/cubes``,
  ``/healthz``, ``/metrics``) and a no-tracebacks error contract;
* :mod:`repro.service.client` — a retrying client with exponential
  backoff + jitter and per-call deadline budgets;
* :mod:`repro.service.metrics` — counters and latency histograms in
  Prometheus text format.

Quickstart::

    from repro import OpportunityMap, ComparisonEngine
    from repro.service import ComparisonHTTPServer

    om = OpportunityMap(dataset)
    om.precompute_cubes()
    engine = ComparisonEngine()
    engine.add_store(om.store)
    server = ComparisonHTTPServer(engine, port=0).start_background()
    print(server.url)   # POST /compare here
"""

from .config import ConfigError, ServiceConfig
from .engine import (
    BatchScreenOutcome,
    CircuitBreaker,
    CompareOutcome,
    ComparisonEngine,
    DeadlineExceeded,
    EngineError,
    IngestOutcome,
    StoreUnavailable,
    UnknownStoreError,
)
from .batch import FleetScreenOutcome, PairFailure, screen_fleet
from .client import (
    BudgetExhausted,
    ClientError,
    RetryPolicy,
    ServerError,
    ServiceClient,
)
from .http import ComparisonHTTPServer, serve
from .metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
    service_metrics,
)

__all__ = [
    "ServiceConfig",
    "ConfigError",
    "ComparisonEngine",
    "CompareOutcome",
    "BatchScreenOutcome",
    "IngestOutcome",
    "EngineError",
    "UnknownStoreError",
    "DeadlineExceeded",
    "StoreUnavailable",
    "CircuitBreaker",
    "screen_fleet",
    "FleetScreenOutcome",
    "PairFailure",
    "ServiceClient",
    "RetryPolicy",
    "ClientError",
    "ServerError",
    "BudgetExhausted",
    "ComparisonHTTPServer",
    "serve",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "ServiceMetrics",
    "service_metrics",
]

"""The comparison service — the library grown into a serving system.

The paper describes a deployed split: cubes are generated off-line
("in the evening") and engineers then issue interactive comparison
queries against the warm store all day.  This package is that serving
layer:

* :mod:`repro.service.config` — one dataclass of engine/server
  settings;
* :mod:`repro.service.engine` — a thread-safe
  :class:`ComparisonEngine` owning named cube stores, a worker pool
  with per-request deadlines, a per-store circuit breaker, and a
  generation-aware LRU result cache that the incremental-ingest path
  invalidates;
* :mod:`repro.service.batch` — :func:`screen_fleet`, the fleet-wide
  pairwise sweep fanned out across the pool, degrading per-pair
  failures into a structured ledger instead of aborting;
* :mod:`repro.service.http` — a stdlib ``ThreadingHTTPServer`` with
  JSON endpoints (``/compare``, ``/rank``, ``/ingest``, ``/cubes``,
  ``/healthz``, ``/metrics``, ``/debug/traces``) and a no-tracebacks
  error contract;
* :mod:`repro.service.client` — a retrying client with exponential
  backoff + jitter and per-call deadline budgets;
* :mod:`repro.service.metrics` — counters and latency histograms in
  Prometheus text format;
* :mod:`repro.service.tracing` — per-request span trees with a
  propagated request id, an in-memory slow/recent trace buffer and a
  JSONL exporter.

This ``__init__`` resolves its exports lazily (PEP 562): the tracing
primitives are called from lower layers (``repro.cube.store``,
``repro.core.comparator``), and an eager ``from .engine import …``
here would close an import cycle through those modules.  Lazy
resolution keeps ``import repro.service.tracing`` free of the engine
and the HTTP server while the public ``from repro.service import
ComparisonEngine`` surface stays exactly as it was.

Quickstart::

    from repro import OpportunityMap, ComparisonEngine
    from repro.service import ComparisonHTTPServer

    om = OpportunityMap(dataset)
    om.precompute_cubes()
    engine = ComparisonEngine()
    engine.add_store(om.store)
    server = ComparisonHTTPServer(engine, port=0).start_background()
    print(server.url)   # POST /compare here
"""

from importlib import import_module
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .batch import FleetScreenOutcome, PairFailure, screen_fleet
    from .client import (
        BudgetExhausted,
        ClientError,
        NonFiniteResponse,
        RetryPolicy,
        ServerError,
        ServiceClient,
    )
    from .config import ConfigError, ServiceConfig
    from .engine import (
        BatchScreenOutcome,
        CircuitBreaker,
        CompareOutcome,
        ComparisonEngine,
        CrossCompareOutcome,
        DeadlineExceeded,
        EngineError,
        ExplainOutcome,
        IngestOutcome,
        StoreUnavailable,
        UnknownStoreError,
    )
    from .http import ComparisonHTTPServer, serve
    from .metrics import (
        Counter,
        Histogram,
        MetricsRegistry,
        ServiceMetrics,
        service_metrics,
    )
    from .tracing import (
        Span,
        Trace,
        TraceBuffer,
        TraceLogWriter,
        current_trace,
        span,
        start_trace,
    )

#: Public name -> defining submodule, resolved on first attribute access.
_EXPORTS = {
    "ServiceConfig": "config",
    "ConfigError": "config",
    "ComparisonEngine": "engine",
    "CompareOutcome": "engine",
    "CrossCompareOutcome": "engine",
    "BatchScreenOutcome": "engine",
    "ExplainOutcome": "engine",
    "IngestOutcome": "engine",
    "EngineError": "engine",
    "UnknownStoreError": "engine",
    "DeadlineExceeded": "engine",
    "StoreUnavailable": "engine",
    "CircuitBreaker": "engine",
    "screen_fleet": "batch",
    "FleetScreenOutcome": "batch",
    "PairFailure": "batch",
    "ServiceClient": "client",
    "RetryPolicy": "client",
    "ClientError": "client",
    "NonFiniteResponse": "client",
    "ServerError": "client",
    "BudgetExhausted": "client",
    "KeepAliveTransport": "client",
    "ComparisonHTTPServer": "http",
    "serve": "http",
    "serve_prefork": "prefork",
    "PreforkError": "prefork",
    "Counter": "metrics",
    "Histogram": "metrics",
    "MetricsRegistry": "metrics",
    "ServiceMetrics": "metrics",
    "service_metrics": "metrics",
    "merge_dumps": "metrics",
    "Trace": "tracing",
    "Span": "tracing",
    "TraceBuffer": "tracing",
    "TraceLogWriter": "tracing",
    "span": "tracing",
    "start_trace": "tracing",
    "current_trace": "tracing",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(f".{module_name}", __name__), name)
    globals()[name] = value  # cache: next access skips this hook
    return value


def __dir__():
    return sorted(set(__all__) | set(globals()))

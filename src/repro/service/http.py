"""Stdlib HTTP front-end for the comparison engine.

A :class:`ThreadingHTTPServer` exposing the engine as small JSON
endpoints:

==========  ==================  ==========================================
method      path                purpose
==========  ==================  ==========================================
POST        ``/compare``        one comparison; full result (``top``
                                truncates)
POST        ``/rank``           the full attribute ranking, scores only
POST        ``/ingest``         absorb a record batch (bumps the
                                generation)
GET         ``/cubes``          registered stores and their cube
                                inventories
GET         ``/healthz``        liveness probe
GET         ``/metrics``        Prometheus text exposition
GET         ``/debug/traces``   recent + slowest request traces
==========  ==================  ==========================================

Error contract: clients never see a traceback.  Malformed requests and
unknown attributes/values/stores return ``400`` with a JSON error
body, unknown paths ``404``, wrong methods ``405``, and anything
unexpected is a generic ``500`` whose detail stays in the server log.
Overload surfaces as ``503``: a deadline overrun carries the applied
``deadline_ms`` in the body (so a retrying client can budget), and an
open circuit breaker carries ``retry_after`` in the body plus a
``Retry-After`` header.

Observability contract: every request is traced.  The handler accepts
a client ``X-Request-Id`` header (or mints one), echoes it as a
response header, and includes ``request_id`` in every JSON body —
errors included — so a client log line can always be joined with the
server's.  ``?trace=1`` (or ``"trace": true`` in a JSON body) returns
the request's span tree inline; finished traces also land in a
bounded in-memory buffer served at ``GET /debug/traces``, optionally
in a ``--trace-log`` JSONL file, and — past the configured
``slow_request_ms`` threshold — as a one-line ``WARNING`` span
summary.  Probe endpoints (``/healthz``, ``/metrics``,
``/debug/traces`` itself) are traced for their own response but not
retained, so a scraper cannot wash real traffic out of the buffer.

Unrouted paths are clamped to the single metrics label
``endpoint="unknown"`` before anything is observed — a port scanner
sweeping random paths must not mint one counter series per probe.
"""

from __future__ import annotations

import json
import logging
import math
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qs

from ..core.measures import measure_names
from ..cube.sharded import ShardReadError
from ..cube.wal import WalError
from ..testing.sites import SITE_HTTP_HANDLER, trip
from .coerce import is_number
from .config import ServiceConfig
from .engine import (
    ComparisonEngine,
    CrossCompareOutcome,
    DeadlineExceeded,
    IngestOverloaded,
    StoreUnavailable,
)
from .tracing import (
    Trace,
    TraceBuffer,
    TraceLogWriter,
    sanitize_request_id,
    slow_summary,
    start_trace,
    worker_id,
)

__all__ = ["ComparisonHTTPServer", "serve", "dumps_sanitized"]

logger = logging.getLogger("repro.service")

#: Reject request bodies beyond this many bytes (64 MB) outright.
MAX_BODY_BYTES = 64 * 1024 * 1024


def _sanitize(value: Any) -> Tuple[Any, bool]:
    """Replace non-finite floats with ``None``, bottom-up.

    Returns ``(sanitized, leaked)`` where ``leaked`` reports a
    replaced non-finite below this node that no dict has claimed yet.
    The nearest enclosing dict absorbs the leak by gaining a
    ``"non_finite": true`` marker, so a client can tell "this entry
    really was null" from "this entry was ±inf/NaN before encoding".
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None, True
    if isinstance(value, (list, tuple)):
        items = []
        leaked = False
        for item in value:
            sanitized, leak = _sanitize(item)
            items.append(sanitized)
            leaked = leaked or leak
        return items, leaked
    if isinstance(value, dict):
        out = {}
        leaked = False
        for key, item in value.items():
            sanitized, leak = _sanitize(item)
            out[key] = sanitized
            leaked = leaked or leak
        if leaked:
            out["non_finite"] = True
        return out, False
    return value, False


def dumps_sanitized(payload: Dict[str, Any]) -> bytes:
    """Encode a response body as *strict* JSON, always.

    Bare ``json.dumps`` emits the invalid literals ``NaN`` /
    ``Infinity`` for non-finite floats (which several measures
    legitimately produce on zero-support cells); strict parsers —
    including :class:`~repro.service.client.ServiceClient` — reject
    those bodies.  The fast path is one ``allow_nan=False`` encode;
    only a body that actually contains a non-finite float pays the
    sanitizing walk (non-finite → ``null`` + ``"non_finite": true`` on
    the nearest enclosing object).
    """
    try:
        return json.dumps(payload, allow_nan=False).encode("utf-8")
    except ValueError:
        sanitized, _ = _sanitize(payload)
        return json.dumps(sanitized, allow_nan=False).encode("utf-8")


class _BadRequest(ValueError):
    """Internal: maps to a 400 with its message as the error body."""


def _require(payload: Mapping[str, Any], *fields: str) -> Tuple[Any, ...]:
    missing = [f for f in fields if f not in payload]
    if missing:
        raise _BadRequest(
            f"missing required field(s): {', '.join(missing)}"
        )
    return tuple(payload[f] for f in fields)


def _optional_str_list(payload: Mapping[str, Any], field: str):
    value = payload.get(field)
    if value is None:
        return None
    if not isinstance(value, list) or not all(
        isinstance(v, str) for v in value
    ):
        raise _BadRequest(f"{field!r} must be a list of strings")
    return value


def _optional_deadline(payload: Mapping[str, Any]) -> Any:
    if "deadline_ms" not in payload:
        return _UNSET
    value = payload["deadline_ms"]
    if value is None:
        return None
    # bool is an int subclass: "deadline_ms": true must not pass as 1.
    if not is_number(value) or value <= 0:
        raise _BadRequest("'deadline_ms' must be a positive number")
    return value


def _optional_measure(payload: Mapping[str, Any]) -> Optional[str]:
    """The request's ``measure`` field, validated against the registry
    early so an unknown name 400s with the known names listed."""
    value = payload.get("measure")
    if value is None:
        return None
    if not isinstance(value, str):
        raise _BadRequest("'measure' must be a string")
    known = measure_names()
    if value not in known:
        raise _BadRequest(
            f"unknown measure {value!r}; registered measures: "
            f"{', '.join(known)}"
        )
    return value


def _query_flag(query: str, name: str) -> bool:
    """True when ``name`` appears in the query string as a truthy flag
    (``trace=1``, ``trace=true``, bare ``trace``)."""
    if not query:
        return False
    values = parse_qs(query, keep_blank_values=True).get(name)
    if values is None:
        return False
    return values[-1].lower() in ("", "1", "true", "yes")


_UNSET = object()


class _Handler(BaseHTTPRequestHandler):
    """Request handler; one instance per request, many threads."""

    server: "ComparisonHTTPServer"
    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        request_id = getattr(self, "_request_id", None)
        if request_id is not None and "request_id" not in payload:
            payload = {**payload, "request_id": request_id}
        trace = getattr(self, "_trace", None)
        if (
            trace is not None
            and getattr(self, "_want_trace", False)
            and "trace" not in payload
        ):
            # The inline tree is a live snapshot taken while the root
            # span is still open; stamp the status now so the client
            # sees it (the dispatch loop re-stamps it at the end for
            # the retained copy).
            trace.root.annotate(status=status)
            payload = {**payload, "trace": trace.to_dict()}
        body = dumps_sanitized(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            raise _BadRequest(
                "a JSON body with a Content-Length header is required"
            ) from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _BadRequest(
                f"request body must be 0..{MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length)
        if len(raw) < length:
            # A stalled or disconnected client delivered less than it
            # promised; say so instead of blaming the JSON parser.
            raise _BadRequest(
                f"truncated request body: received {len(raw)} of the "
                f"{length} bytes announced in Content-Length"
            )
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("the JSON body must be an object")
        trace_flag = payload.get("trace")
        if trace_flag is not None:
            if not isinstance(trace_flag, bool):
                raise _BadRequest("'trace' must be a boolean")
            if trace_flag:
                self._want_trace = True
        return payload

    def _dispatch(self, method: str) -> None:
        head, _, query = self.path.partition("?")
        path = head.rstrip("/") or "/"
        routes = _ROUTES.get(path)
        # Unrouted paths share one label: a port scanner sweeping
        # random paths must not grow unbounded metric cardinality.
        if routes is None:
            endpoint = "unknown"
        else:
            endpoint = path.lstrip("/") or "root"
        self._request_id = sanitize_request_id(
            self.headers.get("X-Request-Id")
        )
        self._want_trace = _query_flag(query, "trace")
        self._trace = None
        status = 500
        started = time.perf_counter()
        with start_trace(self._request_id, name="http.dispatch") as trace:
            self._trace = trace
            trace.root.annotate(
                method=method, path=path, endpoint=endpoint
            )
            try:
                trip(SITE_HTTP_HANDLER, method=method, path=path)
                if routes is None:
                    status = 404
                    self._send_json(
                        status, {"error": f"unknown path {path!r}"}
                    )
                elif routes.get(method) is None:
                    status = 405
                    self._send_json(
                        status,
                        {
                            "error": (
                                f"{method} not allowed on {path}; use "
                                f"{', '.join(sorted(routes))}"
                            )
                        },
                    )
                else:
                    status = getattr(self, routes[method])()
            except _BadRequest as exc:
                status = 400
                self._send_json(status, {"error": str(exc)})
            except DeadlineExceeded as exc:
                status = 503
                body: Dict[str, Any] = {"error": str(exc)}
                if exc.deadline_ms is not None:
                    body["deadline_ms"] = exc.deadline_ms
                self._send_json(status, body)
            except StoreUnavailable as exc:
                status = 503
                retry_after = max(1, math.ceil(exc.retry_after))
                self._send_json(
                    status,
                    {
                        "error": str(exc),
                        "store": exc.store,
                        "retry_after": exc.retry_after,
                    },
                    headers={"Retry-After": str(retry_after)},
                )
            except IngestOverloaded as exc:
                # Admission control, not failure: the backlog crossed
                # the high watermark, so the batch is rejected before
                # it queues.  429 + Retry-After rather than unbounded
                # queueing; the retrying client honors the hint.
                status = 429
                retry_after = max(1, math.ceil(exc.retry_after))
                self._send_json(
                    status,
                    {
                        "error": str(exc),
                        "store": exc.store,
                        "retry_after": exc.retry_after,
                        "backlog": exc.backlog,
                    },
                    headers={"Retry-After": str(retry_after)},
                )
            except WalError as exc:
                # The durable write path failed (disk full, bad
                # device): the batch was NOT accepted — absorbing it
                # would acknowledge data that cannot survive a crash.
                status = 503
                self._send_json(status, {"error": str(exc)})
            except ShardReadError as exc:
                # One shard of a scatter-gather read failed: a typed
                # partial-failure 503 naming the shard, never a
                # traceback, and retryable (the shard may heal or its
                # breaker will shed the load).
                status = 503
                self._send_json(
                    status,
                    {"error": str(exc), "shard": exc.shard},
                )
            except (ValueError, KeyError) as exc:
                # Domain errors (ComparatorError, CubeError,
                # SchemaError, EngineError, bad lookups) all derive
                # from these.
                status = 400
                message = str(exc) or exc.__class__.__name__
                if isinstance(exc, KeyError) and exc.args:
                    message = str(exc.args[0])
                self._send_json(status, {"error": message})
            except (BrokenPipeError, ConnectionResetError):
                status = 499  # client went away; nothing to send
            except Exception:
                status = 500
                logger.exception(
                    "internal error handling %s %s", method, path
                )
                self._send_json(status, {"error": "internal server error"})
            finally:
                trace.root.annotate(status=status)
        # The root span is finished here; retention sees final timings.
        elapsed = time.perf_counter() - started
        metrics = self.server.engine.metrics
        metrics.requests.inc(endpoint=endpoint, status=str(status))
        metrics.latency.observe(elapsed, endpoint=endpoint)
        try:
            self.server.record_trace(trace, endpoint=endpoint,
                                     status=status)
        except Exception:  # never let bookkeeping break a response
            logger.exception("failed to record trace %s",
                             trace.request_id)

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    # -- endpoints -----------------------------------------------------

    def _handle_healthz(self) -> int:
        engine = self.server.engine
        body: Dict[str, Any] = {
            "status": "ok",
            "stores": engine.store_names(),
            "workers": engine.config.workers,
        }
        extra = self.server.health_extra
        if extra is not None:
            try:
                body.update(extra())
            except Exception:  # the probe must answer regardless
                logger.exception("health_extra hook failed")
        self._send_json(200, body)
        return 200

    def _handle_metrics(self) -> int:
        provider = self.server.metrics_text_provider
        text: Optional[str] = None
        if provider is not None:
            try:
                text = provider()
            except Exception:
                # The aggregator (the pre-fork parent) may be mid-
                # restart; serve this process's own counters rather
                # than failing the scrape.
                logger.exception("metrics aggregation failed")
        if text is None:
            text = self.server.engine.metrics.render()
        self._send_text(200, text)
        return 200

    def _handle_debug_traces(self) -> int:
        self._send_json(200, self.server.traces.snapshot())
        return 200

    def _handle_cubes(self) -> int:
        self._send_json(
            200, {"stores": self.server.engine.describe_stores()}
        )
        return 200

    def _compare_outcome(self, payload: Mapping[str, Any]):
        """Run the compare described by ``payload``.

        Returns ``(outcome, measure_label)`` where the label is the
        resolved measure name — the requested one, or the serving
        store's default when the request leaves ``measure`` unset.
        """
        pivot, value_a, value_b, target = _require(
            payload, "pivot", "value_a", "value_b", "target_class"
        )
        for name, value in (
            ("pivot", pivot),
            ("value_a", value_a),
            ("value_b", value_b),
            ("target_class", target),
        ):
            if not isinstance(value, str):
                raise _BadRequest(f"{name!r} must be a string")
        attributes = _optional_str_list(payload, "attributes")
        for name in ("store", "store_a", "store_b"):
            value = payload.get(name)
            if value is not None and not isinstance(value, str):
                raise _BadRequest(f"{name!r} must be a string")
        store = payload.get("store")
        store_a = payload.get("store_a")
        store_b = payload.get("store_b")
        if (store_a is None) != (store_b is None):
            raise _BadRequest(
                "cross-store requests need both 'store_a' and "
                "'store_b'"
            )
        if store_a is not None and store is not None:
            raise _BadRequest(
                "'store' and 'store_a'/'store_b' are mutually "
                "exclusive"
            )
        measure = _optional_measure(payload)
        deadline = _optional_deadline(payload)
        kwargs: Dict[str, Any] = {}
        if deadline is not _UNSET:
            kwargs["deadline_ms"] = deadline
        engine = self.server.engine
        if store_a is not None:
            outcome = engine.compare_across(
                store_a, store_b, pivot, value_a, value_b, target,
                attributes=attributes, measure=measure, **kwargs,
            )
            label = measure or engine.default_measure(store_a)
            return outcome, label
        outcome = engine.compare(
            pivot, value_a, value_b, target,
            attributes=attributes, store=store, measure=measure,
            **kwargs,
        )
        label = measure or engine.default_measure(store)
        return outcome, label

    @staticmethod
    def _provenance(outcome: Any) -> Dict[str, Any]:
        """The serving-provenance fields of a compare/rank body.

        Single-store outcomes report ``store``/``generation``;
        cross-store outcomes report both sides (and both
        generations, each an int or a shard vector).
        """
        if isinstance(outcome, CrossCompareOutcome):
            return {
                "store_a": outcome.store_a,
                "store_b": outcome.store_b,
                "generation_a": outcome.generation_a,
                "generation_b": outcome.generation_b,
                "cached": outcome.cache_hit,
            }
        return {
            "store": outcome.store,
            "generation": outcome.generation,
            "cached": outcome.cache_hit,
        }

    def _handle_compare(self) -> int:
        payload = self._read_json()
        top = payload.get("top")
        # bool is an int subclass: "top": true must not pass as top=1.
        if top is not None and (
            isinstance(top, bool) or not isinstance(top, int) or top < 0
        ):
            raise _BadRequest("'top' must be a non-negative integer")
        outcome, measure_label = self._compare_outcome(payload)
        body = outcome.result.to_dict(top=top)
        body.update(self._provenance(outcome))
        body["measure"] = measure_label
        self._send_json(200, body)
        return 200

    def _handle_rank(self) -> int:
        payload = self._read_json()
        outcome, measure_label = self._compare_outcome(payload)
        result = outcome.result
        self._send_json(
            200,
            {
                **self._provenance(outcome),
                "measure": measure_label,
                "pivot_attribute": result.pivot_attribute,
                "value_good": result.value_good,
                "value_bad": result.value_bad,
                "target_class": result.target_class,
                "cf_good": result.cf_good,
                "cf_bad": result.cf_bad,
                "ranking": [
                    {
                        "rank": i,
                        "attribute": e.attribute,
                        "score": e.score,
                    }
                    for i, e in enumerate(result.ranked, start=1)
                ],
                "property_attributes": [
                    {"attribute": e.attribute, "score": e.score}
                    for e in result.property_attributes
                ],
            },
        )
        return 200

    def _handle_explain(self) -> int:
        payload = self._read_json()
        pivot, value_a, value_b, target, attribute = _require(
            payload,
            "pivot", "value_a", "value_b", "target_class", "attribute",
        )
        for name, value in (
            ("pivot", pivot),
            ("value_a", value_a),
            ("value_b", value_b),
            ("target_class", target),
            ("attribute", attribute),
        ):
            if not isinstance(value, str):
                raise _BadRequest(f"{name!r} must be a string")
        top = payload.get("top")
        if top is None:
            top = 3
        # bool is an int subclass: "top": true must not pass as top=1.
        elif isinstance(top, bool) or not isinstance(top, int) or top < 1:
            raise _BadRequest("'top' must be a positive integer")
        attributes = _optional_str_list(payload, "attributes")
        store = payload.get("store")
        if store is not None and not isinstance(store, str):
            raise _BadRequest("'store' must be a string")
        measure = _optional_measure(payload)
        deadline = _optional_deadline(payload)
        kwargs: Dict[str, Any] = {}
        if deadline is not _UNSET:
            kwargs["deadline_ms"] = deadline
        outcome = self.server.engine.explain(
            pivot, value_a, value_b, target, attribute,
            top=top, attributes=attributes, store=store,
            measure=measure, **kwargs,
        )
        body = outcome.explanation.to_dict()
        body.update(
            {
                "store": outcome.store,
                "generation": outcome.generation,
                "cached": outcome.cache_hit,
            }
        )
        self._send_json(200, body)
        return 200

    def _handle_ingest(self) -> int:
        payload = self._read_json()
        (rows,) = _require(payload, "rows")
        if not isinstance(rows, list):
            raise _BadRequest("'rows' must be a list of records")
        store = payload.get("store")
        if store is not None and not isinstance(store, str):
            raise _BadRequest("'store' must be a string")
        outcome = self.server.engine.ingest(rows, store=store)
        self._send_json(
            200,
            {
                "store": outcome.store,
                "records": outcome.records,
                "cubes_updated": outcome.cubes_updated,
                "generation": outcome.generation,
                "coalesced": outcome.coalesced,
            },
        )
        return 200


_ROUTES: Dict[str, Dict[str, str]] = {
    "/healthz": {"GET": "_handle_healthz"},
    "/metrics": {"GET": "_handle_metrics"},
    "/cubes": {"GET": "_handle_cubes"},
    "/compare": {"POST": "_handle_compare"},
    "/rank": {"POST": "_handle_rank"},
    "/explain": {"POST": "_handle_explain"},
    "/ingest": {"POST": "_handle_ingest"},
    "/debug/traces": {"GET": "_handle_debug_traces"},
}

#: Endpoints whose traces are not retained (buffer / JSONL / slow log):
#: probes and the trace endpoints themselves, which would otherwise
#: wash real traffic out of the bounded buffer.
_UNRETAINED_ENDPOINTS = frozenset({"healthz", "metrics", "debug/traces"})


class ComparisonHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`ComparisonEngine`.

    >>> server = ComparisonHTTPServer(engine)     # doctest: +SKIP
    >>> server.start_background()                 # doctest: +SKIP
    >>> print(server.url)                         # doctest: +SKIP

    Binding ``port=0`` (the test/example default path) picks a free
    ephemeral port; read the actual address back from :attr:`url`.

    ``sock`` adopts an already-bound, already-listening socket instead
    of binding a fresh one — the pre-fork tier binds once in the
    parent and every forked worker accepts on the inherited socket.
    ``reuse_port`` requests ``SO_REUSEPORT`` on a fresh bind (several
    processes then each bind the same address and the kernel load-
    balances accepted connections between them).
    """

    daemon_threads = True

    def __init__(
        self,
        engine: ComparisonEngine,
        host: Optional[str] = None,
        port: Optional[int] = None,
        sock: Optional[socket.socket] = None,
        reuse_port: bool = False,
    ) -> None:
        config = engine.config
        address = (
            host if host is not None else config.host,
            port if port is not None else config.port,
        )
        if reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise OSError(
                "SO_REUSEPORT is not available on this platform"
            )
        self.allow_reuse_port = bool(reuse_port)
        if sock is not None:
            super().__init__(address, _Handler, bind_and_activate=False)
            # Replace the fresh unbound socket with the adopted one;
            # it is already bound and listening, so neither
            # server_bind nor server_activate runs again.
            self.socket.close()
            self.socket = sock
            self.server_address = sock.getsockname()
        else:
            super().__init__(address, _Handler)
        self.engine = engine
        self._thread: Optional[threading.Thread] = None
        self.traces = TraceBuffer(config.trace_buffer_size)
        self.trace_writer: Optional[TraceLogWriter] = (
            TraceLogWriter(config.trace_log_path)
            if config.trace_log_path
            else None
        )
        #: Pre-fork hooks.  ``metrics_text_provider`` replaces the
        #: local ``/metrics`` rendering (workers ask the parent for
        #: the fleet-wide aggregation); ``health_extra`` merges extra
        #: fields (worker slot, pid, snapshot generation) into the
        #: ``/healthz`` body.  Both stay ``None`` in single-process
        #: serving.
        self.metrics_text_provider: Optional[Callable[[], str]] = None
        self.health_extra: Optional[
            Callable[[], Dict[str, Any]]
        ] = None

    def record_trace(
        self, trace: "Trace", endpoint: str, status: int
    ) -> None:
        """Retain one finished request trace.

        Feeds the ``/debug/traces`` buffer, the optional JSONL export
        and the slow-request log; probe endpoints (see
        ``_UNRETAINED_ENDPOINTS``) are skipped everywhere.
        """
        if endpoint in _UNRETAINED_ENDPOINTS:
            return
        payload = trace.to_dict()
        payload["endpoint"] = endpoint
        payload["status"] = status
        worker = worker_id()
        if worker is not None:
            payload["worker"] = worker
        self.traces.record(payload)
        metrics = self.engine.metrics
        metrics.traces_recorded.inc(endpoint=endpoint)
        if self.trace_writer is not None:
            self.trace_writer.write(payload)
        threshold = self.engine.config.slow_request_ms
        if threshold is not None and (
            payload["duration_ms"] >= threshold
        ):
            metrics.slow_requests.inc(endpoint=endpoint)
            logger.warning("%s", slow_summary(payload))

    @property
    def url(self) -> str:
        """Base URL of the bound socket (real port after bind).

        A wildcard bind (``0.0.0.0``, ``::`` or an empty host) is
        mapped to the loopback address — "connect to 0.0.0.0" is not
        reliably dialable off-box and breaks copy-paste from the
        ``repro serve`` banner.  IPv6 hosts are bracketed.
        """
        host, port = self.server_address[:2]
        if host in ("", "0.0.0.0"):
            host = "127.0.0.1"
        elif host in ("::", "::0"):
            host = "::1"
        if ":" in host:
            host = f"[{host}]"
        return f"http://{host}:{port}"

    def start_background(self) -> "ComparisonHTTPServer":
        """Run ``serve_forever`` on a daemon thread (tests, examples,
        and the in-process benchmark harness)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever,
            name="repro-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the background thread."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.server_close()
        if self.trace_writer is not None:
            self.trace_writer.close()


def serve(
    engine: ComparisonEngine,
    config: Optional[ServiceConfig] = None,
) -> None:
    """Blocking entry point used by ``repro serve``.

    With ``config.worker_procs > 1`` this delegates to the pre-fork
    tier (:func:`repro.service.prefork.serve_prefork`): the parent
    publishes shared-memory snapshots and N forked workers serve.

    Either way, SIGTERM and SIGINT shut down *gracefully*: the accept
    loop stops, in-flight requests drain (``server_close`` joins the
    handler threads), the trace log closes on a record boundary, and
    every bound WAL is closed — no torn trailing JSONL line, no
    leaked shared-memory segments.
    """
    config = config or engine.config
    if getattr(config, "worker_procs", 1) > 1:
        from .prefork import serve_prefork

        serve_prefork(engine, config)
        return
    server = ComparisonHTTPServer(engine, config.host, config.port)
    logger.info("serving on %s", server.url)
    print(f"repro service listening on {server.url}", flush=True)
    print(
        f"traces: GET {server.url}/debug/traces "
        f"(buffer {config.trace_buffer_size}"
        + (
            f", JSONL -> {config.trace_log_path}"
            if config.trace_log_path
            else ""
        )
        + ")"
    )
    stopping = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:
        # Runs on the main thread — the one inside serve_forever —
        # so the shutdown rendezvous must happen on another thread
        # (shutdown() waits for the serve loop to notice).
        if stopping.is_set():
            return
        stopping.set()
        logger.info("signal %d: draining and shutting down", signum)
        threading.Thread(
            target=server.shutdown, name="repro-shutdown", daemon=True
        ).start()

    previous: Dict[int, object] = {}
    if threading.current_thread() is threading.main_thread():
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, _request_stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)  # type: ignore[arg-type]
        server.server_close()  # joins in-flight handler threads
        if server.trace_writer is not None:
            server.trace_writer.close()
        engine.shutdown()
        engine.close_wals()

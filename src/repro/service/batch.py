"""Parallel fleet screening through the engine.

``examples/fleet_screening.py`` sweeps every value pair of one
attribute sequentially; behind the service the same sweep fans out
across the engine's worker pool — the paper's "many pairs of phones
need to be compared" workload at server concurrency.

The merge is deterministic: results are keyed by the oriented
(good, bad) pair and aggregated with the library's own
:class:`~repro.core.PairwiseReport`, whose rankings sort by
(gap, pair) and (count, attribute) — the completion order of the
workers never shows through.

Degradation is graceful: one dying comparison must not abort a
200-pair screen.  A pair whose compute fails (injected fault, broken
store, deadline, open breaker) becomes a structured
:class:`PairFailure` in the returned :class:`FleetScreenOutcome`
instead of an exception, and every surviving pair's result is exactly
what a fault-free screen would have produced — failures are dropped,
never smeared.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..core.comparator import ComparatorError
from ..core.pairwise import PairwiseReport
from ..core.results import ComparisonResult
from .engine import ComparisonEngine, EngineError, StoreUnavailable

__all__ = ["screen_fleet", "FleetScreenOutcome", "PairFailure"]


class PairFailure(NamedTuple):
    """One pair the screen could not compare, as structured data."""

    value_a: str
    value_b: str
    error: str  #: exception type name, e.g. ``"FaultInjected"``
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "value_a": self.value_a,
            "value_b": self.value_b,
            "error": self.error,
            "message": self.message,
        }


class FleetScreenOutcome(NamedTuple):
    """A fleet screen's report plus its failure ledger.

    ``attempted == len(report.pairs) + skipped + len(failures)``:
    every pair is accounted for exactly once — compared, skipped
    (empty sub-population or below ``min_gap``, as in the sequential
    sweep), or failed.
    """

    report: PairwiseReport
    failures: Tuple[PairFailure, ...]
    attempted: int
    skipped: int

    @property
    def complete(self) -> bool:
        """True when no pair failed."""
        return not self.failures


def screen_fleet(
    engine: ComparisonEngine,
    pivot_attribute: str,
    target_class: str,
    values: Optional[Sequence[str]] = None,
    attributes: Optional[Sequence[str]] = None,
    min_gap: float = 0.0,
    store: Optional[str] = None,
    batch: bool = False,
    measure: Optional[str] = None,
) -> FleetScreenOutcome:
    """Compare every pair of pivot values concurrently.

    Semantics match :func:`repro.core.compare_all_pairs` — pairs with
    an empty sub-population are skipped, pairs whose confidence gap is
    below ``min_gap`` are dropped — but each comparison is one engine
    task, so k values cost k(k-1)/2 comparisons spread over the pool
    (and repeated screens hit the result cache pair by pair).
    ``measure`` selects a registered interestingness measure for every
    pair (``None`` = the store's default); it participates in each
    pair's cache key, so per-measure screens never collide.

    Invalid *requests* (unknown pivot, duplicate values) still raise:
    they would fail every pair identically.  Per-pair infrastructure
    failures degrade into :class:`PairFailure` entries; the test suite
    asserts the surviving report equals the fault-free sweep's.

    With ``batch=True`` the screen runs as one
    :meth:`~repro.service.engine.ComparisonEngine.screen_pairs_batch`
    call: every ``(pivot, A_i)`` cube is fetched and sliced once and
    all ``k(k-1)/2`` pairs are scored from the shared planes through
    the vectorized kernel.  The outcome is identical to the fan-out
    path (the suite asserts it); failure granularity differs — a store
    fault during the shared fetch fails the whole screen's pairs
    rather than one — because in batch mode every pair really does
    depend on that single fetch.
    """
    managed_store = engine._resolve(store)  # validates the store name
    schema = managed_store.store.dataset.schema
    pivot = schema[pivot_attribute]
    if pivot_attribute == schema.class_name:
        raise EngineError(
            "the class attribute cannot be the screening pivot"
        )
    if values is None:
        values = list(pivot.values)
    else:
        for v in values:
            pivot.code_of(v)  # raises on unknown values
        if len(set(values)) != len(values):
            raise EngineError("duplicate values in the fleet screen")

    pairs: List[Tuple[str, str]] = [
        (a, b)
        for i, a in enumerate(values)
        for b in values[i + 1:]
    ]
    if batch:
        return _screen_fleet_batch(
            engine, managed_store.name, pivot_attribute, target_class,
            pairs, attributes, min_gap, store, measure,
        )
    futures = []
    failures: List[PairFailure] = []
    for a, b in pairs:
        try:
            futures.append(
                (
                    (a, b),
                    engine.compare_async(
                        pivot_attribute, a, b, target_class,
                        attributes=attributes, store=store,
                        measure=measure,
                    ),
                )
            )
        except StoreUnavailable as exc:
            # The breaker rejected the submission itself.
            futures.append(((a, b), exc))

    results: Dict[Tuple[str, str], ComparisonResult] = {}
    skipped = 0
    for (a, b), future in futures:
        if isinstance(future, StoreUnavailable):
            failures.append(
                PairFailure(a, b, type(future).__name__, str(future))
            )
            continue
        try:
            outcome = future.result()
        except ComparatorError:
            skipped += 1  # empty sub-population etc., as in the sweep
            continue
        except Exception as exc:
            failures.append(
                PairFailure(a, b, type(exc).__name__, str(exc))
            )
            continue
        result = outcome.result
        if result.cf_bad - result.cf_good < min_gap:
            skipped += 1
            continue
        results[(result.value_good, result.value_bad)] = result
    if failures:
        engine.metrics.fleet_pair_failures.inc(
            len(failures), store=managed_store.name
        )
    return FleetScreenOutcome(
        report=PairwiseReport(pivot_attribute, target_class, results),
        failures=tuple(failures),
        attempted=len(pairs),
        skipped=skipped,
    )


def _screen_fleet_batch(
    engine: ComparisonEngine,
    store_name: str,
    pivot_attribute: str,
    target_class: str,
    pairs: List[Tuple[str, str]],
    attributes: Optional[Sequence[str]],
    min_gap: float,
    store: Optional[str],
    measure: Optional[str],
) -> FleetScreenOutcome:
    """The shared-slice batch path behind ``screen_fleet(batch=True)``.

    One engine call screens every pair.  Pair-level domain errors
    (empty sub-population) come back as skips, matching the fan-out
    path; an infrastructure failure hits the shared cube fetch and so
    fails every pair — each becomes a :class:`PairFailure`, keeping
    the ``attempted == compared + skipped + failed`` ledger exact.
    """
    try:
        outcome = engine.screen_pairs_batch(
            pivot_attribute, pairs, target_class,
            attributes=attributes, store=store, measure=measure,
        )
    except (EngineError, ComparatorError):
        raise  # invalid request: would fail every pair identically
    except Exception as exc:
        failures = tuple(
            PairFailure(a, b, type(exc).__name__, str(exc))
            for a, b in pairs
        )
        if failures:
            engine.metrics.fleet_pair_failures.inc(
                len(failures), store=store_name
            )
        return FleetScreenOutcome(
            report=PairwiseReport(pivot_attribute, target_class, {}),
            failures=failures,
            attempted=len(pairs),
            skipped=0,
        )
    results: Dict[Tuple[str, str], ComparisonResult] = {}
    skipped = 0
    for _, pair_outcome in outcome.screen.outcomes:
        if isinstance(pair_outcome, ComparatorError):
            skipped += 1  # empty sub-population etc., as in the sweep
            continue
        if pair_outcome.cf_bad - pair_outcome.cf_good < min_gap:
            skipped += 1
            continue
        results[
            (pair_outcome.value_good, pair_outcome.value_bad)
        ] = pair_outcome
    return FleetScreenOutcome(
        report=PairwiseReport(pivot_attribute, target_class, results),
        failures=(),
        attempted=len(pairs),
        skipped=skipped,
    )

"""Parallel fleet screening through the engine.

``examples/fleet_screening.py`` sweeps every value pair of one
attribute sequentially; behind the service the same sweep fans out
across the engine's worker pool — the paper's "many pairs of phones
need to be compared" workload at server concurrency.

The merge is deterministic: results are keyed by the oriented
(good, bad) pair and aggregated with the library's own
:class:`~repro.core.PairwiseReport`, whose rankings sort by
(gap, pair) and (count, attribute) — the completion order of the
workers never shows through.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.comparator import ComparatorError
from ..core.pairwise import PairwiseReport
from ..core.results import ComparisonResult
from .engine import ComparisonEngine, EngineError

__all__ = ["screen_fleet"]


def screen_fleet(
    engine: ComparisonEngine,
    pivot_attribute: str,
    target_class: str,
    values: Optional[Sequence[str]] = None,
    attributes: Optional[Sequence[str]] = None,
    min_gap: float = 0.0,
    store: Optional[str] = None,
) -> PairwiseReport:
    """Compare every pair of pivot values concurrently.

    Semantics match :func:`repro.core.compare_all_pairs` — pairs with
    an empty sub-population are skipped, pairs whose confidence gap is
    below ``min_gap`` are dropped — but each comparison is one engine
    task, so k values cost k(k-1)/2 comparisons spread over the pool
    (and repeated screens hit the result cache pair by pair).

    Returns the same :class:`~repro.core.PairwiseReport` the
    sequential sweep builds; the test suite asserts equality.
    """
    managed_store = engine._resolve(store)  # validates the store name
    schema = managed_store.store.dataset.schema
    pivot = schema[pivot_attribute]
    if pivot_attribute == schema.class_name:
        raise EngineError(
            "the class attribute cannot be the screening pivot"
        )
    if values is None:
        values = list(pivot.values)
    else:
        for v in values:
            pivot.code_of(v)  # raises on unknown values
        if len(set(values)) != len(values):
            raise EngineError("duplicate values in the fleet screen")

    pairs: List[Tuple[str, str]] = [
        (a, b)
        for i, a in enumerate(values)
        for b in values[i + 1:]
    ]
    futures = [
        engine.compare_async(
            pivot_attribute, a, b, target_class,
            attributes=attributes, store=store,
        )
        for a, b in pairs
    ]

    results: Dict[Tuple[str, str], ComparisonResult] = {}
    for future in futures:
        try:
            outcome = future.result()
        except ComparatorError:
            continue  # empty sub-population etc., as in the sweep
        result = outcome.result
        if result.cf_bad - result.cf_good < min_gap:
            continue
        results[(result.value_good, result.value_bad)] = result
    return PairwiseReport(pivot_attribute, target_class, results)

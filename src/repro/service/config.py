"""Configuration of the comparison service.

One frozen dataclass carries every tunable of the serving layer —
thread-pool width, result-cache capacity, the per-request deadline and
the bind address — so the engine, the HTTP server and the ``repro
serve`` CLI all agree on defaults and validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .coerce import is_number

__all__ = ["ServiceConfig", "ConfigError"]

#: Fields that must hold real numbers when set.  ``bool`` is an ``int``
#: subclass, so ``ServiceConfig(port=True)`` (e.g. from a mistyped JSON
#: or YAML deployment file) used to slip through every range check as
#: ``1`` — reject the type before any range comparison runs.
#: ``reuse_port`` is excluded: it is a bool by design.
_NUMERIC_FIELDS = (
    "port",
    "workers",
    "worker_procs",
    "cache_size",
    "deadline_ms",
    "breaker_failures",
    "breaker_reset_seconds",
    "trace_buffer_size",
    "slow_request_ms",
    "ingest_coalesce_ms",
    "ingest_high_watermark",
    "wal_segment_bytes",
)


class ConfigError(ValueError):
    """Raised for invalid service configuration."""


@dataclass(frozen=True)
class ServiceConfig:
    """Engine and server settings.

    Parameters
    ----------
    host / port:
        Bind address of the HTTP server.  Port 0 asks the OS for an
        ephemeral port (tests and the in-process example use this).
    workers:
        Size of the engine's thread pool.  Comparisons are
        numpy-dominated and release the GIL in the counting kernels,
        so a few workers genuinely overlap.
    worker_procs:
        Number of serving *processes*.  ``1`` (default) keeps the
        classic single-process ``ThreadingHTTPServer``.  Above 1,
        ``repro serve`` pre-forks that many workers, each attaching
        the parent's shared-memory snapshot publication read-only and
        running its own thread pool of ``workers`` threads; ingest is
        forwarded to the parent (single writer).  Requires ``os.fork``
        (POSIX) and pre-materialised cubes — see
        :mod:`repro.service.prefork`.
    reuse_port:
        With ``worker_procs > 1``: bind one ``SO_REUSEPORT`` listen
        socket per worker (kernel-level load balancing) instead of
        sharing the parent's inherited socket.  Falls back to the
        shared socket where the platform lacks ``SO_REUSEPORT``.
    cache_size:
        Capacity (entry count) of the LRU result cache.  ``0``
        disables caching entirely — every request recomputes.
    deadline_ms:
        Per-request deadline in milliseconds.  A comparison that does
        not finish inside the deadline raises
        :class:`~repro.service.engine.DeadlineExceeded` (HTTP 503).
        ``None`` disables the deadline.
    default_store:
        Name requests fall back to when they do not name a store.
    breaker_failures:
        Consecutive compute failures after which a store's circuit
        breaker opens (requests are rejected immediately with
        :class:`~repro.service.engine.StoreUnavailable` instead of
        piling onto a failing store).  ``0`` disables the breaker.
    breaker_reset_seconds:
        How long an open breaker waits before letting one half-open
        probe through; a successful probe closes the breaker, a failed
        one re-opens it for another full window.
    trace_buffer_size:
        How many traces ``GET /debug/traces`` retains in each of its
        two lists (most recent and slowest).  ``0`` disables
        retention; per-request tracing (``?trace=1``) still works.
    slow_request_ms:
        Requests whose total handling time reaches this threshold log
        a structured one-line span summary at ``WARNING``.  ``None``
        disables the slow log.
    trace_log_path:
        When set, every finished request trace is appended to this
        file as one JSON line (``repro serve --trace-log``).  ``None``
        disables the export.
    ingest_coalesce_ms:
        Opt-in ingest micro-batching window in milliseconds.  When
        set, concurrent small ``/ingest`` batches arriving within the
        window are merged into one store absorb (one counting pass,
        one snapshot swap, one generation bump) at the cost of up to
        one window of added ingest latency.  ``None`` (the default)
        absorbs every batch individually.
    ingest_high_watermark:
        Admission-control ceiling: the number of ingest batches a
        store may have admitted-but-not-yet-absorbed before further
        ``/ingest`` requests are rejected with HTTP 429 and a
        ``Retry-After`` hint (sized from the store's recent absorb
        latency).  Bounds both memory growth and absorb queueing when
        sustained ingest outruns the store.  ``None`` disables
        admission control.
    wal_dir:
        Directory of the write-ahead log (``repro serve --wal-dir``).
        When set, every accepted ingest batch is logged before absorb
        acknowledges, and startup replays the log into the store
        before traffic is accepted.  Sharded stores keep one log per
        shard under this directory.  ``None`` disables durability.
    wal_fsync:
        WAL durability policy: ``"always"`` fsyncs every append
        (power-loss durable), ``"batch"`` (default) flushes every
        append to the OS (process-crash durable), ``"off"`` leaves
        flushing to buffering and rotation.
    wal_segment_bytes:
        WAL segment rotation threshold in bytes.
    """

    host: str = "127.0.0.1"
    port: int = 8023
    workers: int = 4
    worker_procs: int = 1
    reuse_port: bool = False
    cache_size: int = 256
    deadline_ms: Optional[int] = 5_000
    default_store: str = "default"
    breaker_failures: int = 5
    breaker_reset_seconds: float = 30.0
    trace_buffer_size: int = 32
    slow_request_ms: Optional[float] = 1_000.0
    trace_log_path: Optional[str] = None
    ingest_coalesce_ms: Optional[float] = None
    ingest_high_watermark: Optional[int] = 64
    wal_dir: Optional[str] = None
    wal_fsync: str = "batch"
    wal_segment_bytes: int = 16 * 1024 * 1024

    def __post_init__(self) -> None:
        for name in _NUMERIC_FIELDS:
            value = getattr(self, name)
            if value is not None and not is_number(value):
                raise ConfigError(
                    f"{name} must be a number, got {value!r}"
                )
        if self.workers < 1:
            raise ConfigError("workers must be at least 1")
        if self.worker_procs < 1:
            raise ConfigError("worker_procs must be at least 1")
        if self.reuse_port and self.worker_procs < 2:
            raise ConfigError("reuse_port needs worker_procs > 1")
        if self.cache_size < 0:
            raise ConfigError("cache_size must be non-negative")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigError("deadline_ms must be positive or None")
        if not (0 <= self.port <= 65535):
            raise ConfigError("port must be in [0, 65535]")
        if not self.default_store:
            raise ConfigError("default_store must be non-empty")
        if self.breaker_failures < 0:
            raise ConfigError(
                "breaker_failures must be non-negative (0 disables)"
            )
        if self.breaker_reset_seconds <= 0:
            raise ConfigError("breaker_reset_seconds must be positive")
        if self.trace_buffer_size < 0:
            raise ConfigError(
                "trace_buffer_size must be non-negative (0 disables)"
            )
        if self.slow_request_ms is not None and self.slow_request_ms <= 0:
            raise ConfigError(
                "slow_request_ms must be positive or None"
            )
        if (
            self.ingest_coalesce_ms is not None
            and self.ingest_coalesce_ms <= 0
        ):
            raise ConfigError(
                "ingest_coalesce_ms must be positive or None"
            )
        if (
            self.ingest_high_watermark is not None
            and self.ingest_high_watermark < 1
        ):
            raise ConfigError(
                "ingest_high_watermark must be positive or None"
            )
        if self.wal_fsync not in ("always", "batch", "off"):
            raise ConfigError(
                "wal_fsync must be one of 'always', 'batch', 'off'"
            )
        if self.wal_segment_bytes < 1024:
            raise ConfigError(
                "wal_segment_bytes must be at least 1024"
            )

    @property
    def deadline_seconds(self) -> Optional[float]:
        """The deadline converted to seconds (``None`` when disabled)."""
        if self.deadline_ms is None:
            return None
        return self.deadline_ms / 1000.0

"""The concurrent comparison engine.

The paper splits the system into an off-line generation phase ("done
off-line, e.g., in the evening") and an interactive exploration phase
engineers hit all day.  This module is the interactive side grown into
a multi-tenant engine:

* it owns one or more named :class:`~repro.cube.CubeStore`\\ s, each
  fronted by a configured :class:`~repro.core.Comparator` (warm-started
  from a persisted cube archive when available);
* comparisons run on a shared :class:`~concurrent.futures.\
ThreadPoolExecutor` with a per-request deadline — an overrun surfaces
  as the typed :class:`DeadlineExceeded`, never a hung client;
* results flow through a size-bounded LRU cache keyed by the full
  request tuple.  Every entry carries the store *generation* it was
  computed against; absorbing a new monthly batch (the incremental
  merge path) bumps the generation, so stale entries die on their next
  lookup instead of being served.

Concurrency contract: comparisons are readers, ingest is the single
writer — but readers never wait on the writer.  The store publishes
immutable copy-on-write snapshots (see :mod:`repro.cube.store`); a
comparison pins the snapshot current at its start and computes against
that frozen world while ``absorb`` builds the next snapshot off to the
side and installs it with one pointer swap.  A comparison can never
observe a half-merged store, and an ingest of any size adds no
read-path latency beyond the swap itself.  Ingests serialise on a
per-store lock; the optional coalescer
(``ServiceConfig.ingest_coalesce_ms``) merges concurrent small
batches into one absorb before that lock is taken.

Resilience contract: every store carries a :class:`CircuitBreaker`.
Compute failures that are *not* the client's fault (anything other
than a domain ``ValueError``/``KeyError``) count against a
consecutive-failure budget; when it is exhausted the breaker opens and
requests fail fast with the typed :class:`StoreUnavailable` (HTTP 503
with ``Retry-After``) instead of queueing behind a dying store.  After
a cool-down, a single half-open probe decides between closing the
breaker and another full open window.  Cache hits are always served,
breaker state notwithstanding — stale-free results we already have
are exactly what graceful degradation should hand out.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.comparator import Comparator, PairScreenOutcome
from ..core.measures import get_measure
from ..core.results import ComparisonResult, Explanation
from ..cube.persist import archive_schema, load_store_cubes
from ..cube.store import CubeStore
from ..dataset.table import Dataset
from ..testing.sites import SITE_ENGINE_COMPARE, trip
from .config import ServiceConfig
from .metrics import ServiceMetrics, service_metrics
from .tracing import annotate, current_span, current_trace, resume_trace, span

__all__ = [
    "ComparisonEngine",
    "CompareOutcome",
    "CrossCompareOutcome",
    "BatchScreenOutcome",
    "IngestOutcome",
    "EngineError",
    "UnknownStoreError",
    "DeadlineExceeded",
    "StoreUnavailable",
    "IngestOverloaded",
    "CircuitBreaker",
]

_UNSET = object()


class EngineError(ValueError):
    """Raised for invalid engine requests (HTTP 400)."""


class UnknownStoreError(EngineError):
    """Raised when a request names a store the engine does not own."""


class DeadlineExceeded(RuntimeError):
    """Raised when a comparison overruns its deadline (HTTP 503).

    ``deadline_ms`` carries the deadline that applied to the request
    (the per-request override when given, else the engine config's),
    so clients can budget their retries against it.
    """

    def __init__(
        self, message: str, deadline_ms: Optional[float] = None
    ) -> None:
        super().__init__(message)
        self.deadline_ms = deadline_ms


class StoreUnavailable(RuntimeError):
    """Raised when a store's circuit breaker rejects a request
    (HTTP 503 with a ``Retry-After`` hint).

    ``retry_after`` is the seconds until the breaker will next admit a
    half-open probe — the earliest moment a retry can help.
    """

    def __init__(self, store: str, retry_after: float) -> None:
        retry_after = max(float(retry_after), 0.0)
        super().__init__(
            f"store {store!r} is unavailable (circuit breaker open); "
            f"retry in {retry_after:.1f}s"
        )
        self.store = store
        self.retry_after = retry_after


class IngestOverloaded(RuntimeError):
    """Raised when a store's ingest backlog hits the high watermark
    (HTTP 429 with a ``Retry-After`` hint).

    Admission control, not failure: the store is healthy but absorb is
    not keeping up with arrivals, and queueing more batches would only
    grow memory and latency without bound.  ``retry_after`` is sized
    from the store's recent absorb latency times the backlog — roughly
    when the queue will have drained enough to admit the retry.  The
    retrying :class:`~repro.service.client.ServiceClient` honors it.
    """

    def __init__(
        self, store: str, retry_after: float, backlog: int
    ) -> None:
        retry_after = max(float(retry_after), 0.0)
        super().__init__(
            f"store {store!r} ingest backlog is at {backlog} batches "
            f"(high watermark); retry in {retry_after:.1f}s"
        )
        self.store = store
        self.retry_after = retry_after
        self.backlog = backlog


class CircuitBreaker:
    """Consecutive-failure circuit breaker guarding one store.

    closed --(``threshold`` consecutive failures)--> open
    open --(``reset_seconds`` elapse)--> half-open (one probe admitted)
    half-open --(probe succeeds)--> closed
    half-open --(probe fails)--> open (a fresh full window)

    ``threshold=0`` disables the breaker entirely (``allow`` never
    rejects).  ``clock`` is injectable so tests can drive the window
    deterministically, and ``on_transition`` (new state name) feeds
    the metrics panel.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        store: str,
        threshold: int,
        reset_seconds: float,
        clock=time.monotonic,
        on_transition=None,
    ) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if reset_seconds <= 0:
            raise ValueError("reset_seconds must be positive")
        self._store = store
        self._threshold = threshold
        self._reset_seconds = float(reset_seconds)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def _transition(self, state: str) -> None:
        # Caller holds the lock.
        self._state = state
        if self._on_transition is not None:
            self._on_transition(state)

    def allow(self) -> None:
        """Admit a request or raise :class:`StoreUnavailable`.

        The call that moves an open breaker past its window becomes
        the half-open probe; concurrent requests keep getting rejected
        until that probe reports back.
        """
        if self._threshold == 0:
            return
        with self._lock:
            if self._state == self.CLOSED:
                return
            if self._state == self.OPEN:
                remaining = (
                    self._opened_at + self._reset_seconds - self._clock()
                )
                if remaining > 0:
                    raise StoreUnavailable(self._store, remaining)
                self._transition(self.HALF_OPEN)
                self._probing = True
                return
            # Half-open: one probe in flight at a time.
            if self._probing:
                raise StoreUnavailable(
                    self._store, self._reset_seconds
                )
            self._probing = True

    def record_success(self) -> None:
        """A compute finished (or failed for client-side reasons)."""
        if self._threshold == 0:
            return
        with self._lock:
            self._failures = 0
            self._probing = False
            if self._state != self.CLOSED:
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        """An infrastructure failure; may open the breaker."""
        if self._threshold == 0:
            return
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._probing = False
                self._failures = self._threshold
                self._opened_at = self._clock()
                self._transition(self.OPEN)
                return
            self._failures += 1
            if (
                self._state == self.CLOSED
                and self._failures >= self._threshold
            ):
                self._opened_at = self._clock()
                self._transition(self.OPEN)


class CompareOutcome(NamedTuple):
    """A comparison result plus its serving provenance.

    ``generation`` is an ``int`` for a plain store and a per-shard
    tuple (vector clock) for a
    :class:`~repro.cube.sharded.ShardedCubeStore`.
    """

    result: ComparisonResult
    store: str
    generation: object
    cache_hit: bool


class CrossCompareOutcome(NamedTuple):
    """A cross-store comparison result plus both sides' provenance.

    ``value_a`` was read from ``store_a`` at ``generation_a`` and
    ``value_b`` from ``store_b`` at ``generation_b`` — the §V.C
    month-vs-month answer names both worlds it was computed against.
    """

    result: ComparisonResult
    store_a: str
    store_b: str
    generation_a: object
    generation_b: object
    cache_hit: bool


class BatchScreenOutcome(NamedTuple):
    """A shared-slice batch screen plus its serving provenance."""

    screen: PairScreenOutcome
    store: str
    generation: int


class ExplainOutcome(NamedTuple):
    """An attribute explanation plus its serving provenance.

    ``cache_hit`` reports whether the underlying comparison was served
    from the result cache — /explain after /compare on the same tuple
    costs one sort.
    """

    explanation: Explanation
    store: str
    generation: object
    cache_hit: bool
    measure: str


class IngestOutcome(NamedTuple):
    """Outcome of absorbing one record batch.

    ``records`` counts the caller's own rows even when the coalescer
    merged them with other requests' rows into one absorb
    (``coalesced`` is then true and ``cubes_updated``/``generation``
    describe the shared absorb).
    """

    store: str
    records: int
    cubes_updated: int
    generation: int
    coalesced: bool = False


class _IngestCoalescer:
    """Leader/follower micro-batcher in front of one store's absorb.

    The first batch to arrive opens a window and becomes the leader;
    batches arriving while the window is open pile into the same slot.
    When the window closes the leader concatenates the slot's batches
    and runs one absorb; followers block on the slot's event and share
    its outcome (or its exception).  Worst-case added ingest latency
    is one window; the payoff is one counting pass, one snapshot swap
    and one generation bump for the whole burst — cached comparison
    results are invalidated once instead of once per batch.
    """

    class _Slot:
        __slots__ = (
            "batches", "event", "updated", "generation", "error",
            "n_merged",
        )

        def __init__(self) -> None:
            self.batches: List[Dataset] = []
            self.event = threading.Event()
            self.updated = 0
            self.generation = 0
            self.error: Optional[BaseException] = None
            self.n_merged = 0

    def __init__(self, window_seconds: float, absorb) -> None:
        self._window = window_seconds
        self._absorb = absorb  # callable(Dataset) -> (updated, generation)
        self._lock = threading.Lock()
        self._slot: Optional["_IngestCoalescer._Slot"] = None

    def ingest(self, batch: Dataset) -> Tuple[int, int, int]:
        """Enqueue one batch; returns ``(updated, generation,
        n_merged)`` of the absorb that carried it."""
        with self._lock:
            slot = self._slot
            leader = slot is None
            if leader:
                slot = self._Slot()
                self._slot = slot
            slot.batches.append(batch)
        if not leader:
            slot.event.wait()
            if slot.error is not None:
                raise slot.error
            return slot.updated, slot.generation, slot.n_merged
        time.sleep(self._window)
        with self._lock:
            self._slot = None
        try:
            merged = slot.batches[0]
            for extra in slot.batches[1:]:
                merged = merged.concat(extra)
            with span("ingest.coalesce", batches=len(slot.batches)):
                slot.updated, slot.generation = self._absorb(merged)
            slot.n_merged = len(slot.batches)
        except BaseException as exc:
            slot.error = exc
            raise
        finally:
            slot.event.set()
        return slot.updated, slot.generation, slot.n_merged


class _CacheEntry(NamedTuple):
    result: ComparisonResult
    generation: int


class _LRUCache:
    """Size-bounded LRU of comparison results with generation checks."""

    def __init__(self, capacity: int, metrics: ServiceMetrics) -> None:
        self._capacity = capacity
        self._entries: "OrderedDict[tuple, _CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._metrics = metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple, generation: int) -> Optional[_CacheEntry]:
        """The live entry for ``key``, or ``None``.

        An entry computed against an older store generation is stale:
        it is evicted, never returned.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if entry.generation != generation:
                del self._entries[key]
                self._metrics.cache_evictions.inc(reason="stale")
                return None
            self._entries.move_to_end(key)
            return entry

    def put(
        self, key: tuple, generation: int, result: ComparisonResult
    ) -> None:
        if self._capacity == 0:
            return
        with self._lock:
            self._entries[key] = _CacheEntry(result, generation)
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._metrics.cache_evictions.inc(reason="capacity")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class _ManagedStore:
    """A named store with its comparator, ingest lock, optional
    coalescer and circuit breaker."""

    __slots__ = (
        "name", "store", "comparator", "breaker", "ingest_lock",
        "coalescer", "pending", "pending_lock", "absorb_ewma", "wal",
    )

    def __init__(
        self,
        name: str,
        store: CubeStore,
        comparator: Comparator,
        breaker: CircuitBreaker,
    ) -> None:
        self.name = name
        self.store = store
        self.comparator = comparator
        self.breaker = breaker
        self.ingest_lock = threading.Lock()
        self.coalescer: Optional[_IngestCoalescer] = None
        # Admission control: batches admitted but not yet absorbed.
        self.pending = 0
        self.pending_lock = threading.Lock()
        # Exponentially weighted recent absorb latency, seconds; sizes
        # the Retry-After hint of an overload rejection.
        self.absorb_ewma = 0.0
        self.wal: Optional[object] = None

    @property
    def generation(self) -> int:
        """The store's data generation (one bump per absorbed batch)."""
        return self.store.generation


Row = Union[Sequence[object], Mapping[str, object]]


class ComparisonEngine:
    """Thread-safe comparison serving over named cube stores.

    Parameters
    ----------
    config:
        Pool size, cache capacity, default deadline (see
        :class:`~repro.service.config.ServiceConfig`).
    metrics:
        A :class:`~repro.service.metrics.ServiceMetrics` panel to
        update; a private one is created when omitted (the HTTP server
        passes a shared panel so engine and transport metrics land in
        one exposition).
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        self._config = config or ServiceConfig()
        self._metrics = metrics or service_metrics()
        self._stores: Dict[str, _ManagedStore] = {}
        self._stores_lock = threading.Lock()
        self._cache = _LRUCache(self._config.cache_size, self._metrics)
        self._pool = ThreadPoolExecutor(
            max_workers=self._config.workers,
            thread_name_prefix="repro-compare",
        )
        #: Pre-fork worker hook: when set, :meth:`ingest` hands the
        #: raw batch to this callable (which forwards it to the
        #: single-writer parent) instead of absorbing locally.
        self._ingest_forwarder: Optional[
            Callable[[Sequence[Row], Optional[str]], IngestOutcome]
        ] = None

    # ------------------------------------------------------------------
    # Store management
    # ------------------------------------------------------------------

    @property
    def config(self) -> ServiceConfig:
        return self._config

    @property
    def metrics(self) -> ServiceMetrics:
        return self._metrics

    def add_store(
        self,
        store: CubeStore,
        name: Optional[str] = None,
        wal: Optional[object] = None,
        **comparator_options: object,
    ) -> str:
        """Register a store under ``name`` (default: the config's
        default store name).  ``comparator_options`` are forwarded to
        :class:`~repro.core.Comparator`.

        ``wal`` binds a write-ahead log to the store: every absorbed
        batch is logged before it is counted, and the log's metrics
        join this engine's panel.  The caller must have *replayed* the
        log into the store first (:func:`repro.cube.replay_into`) —
        binding happens after replay by construction, so replayed
        batches are never re-appended.
        """
        name = name or self._config.default_store
        comparator = Comparator(store, **comparator_options)  # type: ignore[arg-type]
        # Sharded stores record their scatter fan-out and merge time;
        # duck-typed so the cube layer stays service-free.
        bind = getattr(store, "bind_metrics", None)
        if callable(bind):
            bind(self._metrics, name)
        if wal is not None:
            wal_bind = getattr(wal, "bind_metrics", None)
            if callable(wal_bind):
                wal_bind(self._metrics, name)
            store.bind_wal(wal)
        breaker = CircuitBreaker(
            name,
            self._config.breaker_failures,
            self._config.breaker_reset_seconds,
            on_transition=(
                lambda state, _store=name: (
                    self._metrics.breaker_transitions.inc(
                        store=_store, state=state
                    )
                )
            ),
        )
        managed = _ManagedStore(name, store, comparator, breaker)
        managed.wal = wal
        if self._config.ingest_coalesce_ms is not None:
            managed.coalescer = _IngestCoalescer(
                self._config.ingest_coalesce_ms / 1000.0,
                lambda batch, _m=managed: self._absorb(_m, batch),
            )
        with self._stores_lock:
            if name in self._stores:
                raise EngineError(f"store {name!r} already registered")
            self._stores[name] = managed
        return name

    def load_archive(
        self,
        path: object,
        name: Optional[str] = None,
        wal: Optional[object] = None,
        **comparator_options: object,
    ) -> str:
        """Warm-start a store from a cube archive written by
        :func:`repro.cube.save_cubes`.

        The store's schema is rebuilt from the archive metadata and its
        backing data set starts empty, so every answer comes from the
        persisted cubes — the off-line/interactive split of Section
        III.B across a process boundary.  Cubes absent from the archive
        would lazily count from the empty backing set (all zeros), so
        persist with ``precompute(include_pairs=True)``.

        With ``wal``, the log's tail is replayed into the warmed store
        before registration, skipping every record the archive's
        recorded ``wal_seq`` already covers — a batch is counted from
        the archive or from the log, never both.
        """
        schema = archive_schema(path)
        dataset = Dataset.empty(schema)
        store = CubeStore(dataset)
        load_store_cubes(store, path)
        if wal is not None:
            from ..cube.persist import archive_wal_seq
            from ..cube.wal import replay_into

            report = replay_into(
                store, wal, start_after=archive_wal_seq(path)
            )
            self._metrics.wal_replayed_records.inc(
                report.records,
                store=name or self._config.default_store,
            )
        return self.add_store(
            store, name=name, wal=wal, **comparator_options
        )

    def store_names(self) -> List[str]:
        with self._stores_lock:
            return sorted(self._stores)

    def stores(self) -> Dict[str, CubeStore]:
        """Name → registered store object (a shallow copy).

        The pre-fork publisher captures every store's pinned snapshot
        from this mapping; handing out the store objects (not copies)
        is deliberate — publication must see the same objects ingest
        mutates.
        """
        with self._stores_lock:
            return {name: m.store for name, m in self._stores.items()}

    def wal_seqs(self) -> Dict[str, int]:
        """Name → highest WAL sequence bound to each store (0 without
        a WAL, or when the log does not expose one)."""
        out: Dict[str, int] = {}
        with self._stores_lock:
            managed = list(self._stores.values())
        for m in managed:
            seq = 0
            if m.wal is not None:
                last = getattr(m.wal, "last_seq", None)
                if callable(last):
                    try:
                        seq = int(last())
                    except (OSError, ValueError):
                        seq = 0
                elif isinstance(last, int):
                    seq = last
            out[m.name] = seq
        return out

    def describe_stores(self) -> List[Dict[str, object]]:
        """JSON-safe description of every registered store."""
        with self._stores_lock:
            managed = list(self._stores.values())
        out = []
        for m in sorted(managed, key=lambda m: m.name):
            schema = m.store.dataset.schema
            generation = m.generation
            entry: Dict[str, object] = {
                "name": m.name,
                "generation": (
                    list(generation)
                    if isinstance(generation, tuple)
                    else generation
                ),
                "breaker": m.breaker.state,
                "n_cached_cubes": m.store.n_cached,
                "n_rows": m.store.dataset.n_rows,
                "rows": m.store.dataset.n_rows,
                "class_attribute": schema.class_name,
                "classes": list(schema.class_attribute.values),
                "attributes": list(m.store.attributes),
            }
            # Sharded stores add their per-shard breakdown; duck-typed
            # so the engine never imports the sharding module.
            shard_info = getattr(m.store, "shard_info", None)
            if callable(shard_info):
                entry["shards"] = shard_info()
            # Counting-backend block (kind, rows, spill bytes, chunk
            # config) — duck-typed like the rest.
            backend_info = getattr(m.store, "backend_info", None)
            if callable(backend_info):
                entry["backend"] = backend_info()
            retention = getattr(m.store, "retention_info", None)
            if callable(retention):
                entry["retention"] = retention()
            with m.pending_lock:
                entry["ingest_backlog"] = m.pending
            if m.wal is not None:
                describe = getattr(m.wal, "describe", None)
                if callable(describe):
                    entry["wal"] = describe()
            out.append(entry)
        return out

    def generation(self, store: Optional[str] = None) -> int:
        """Current generation counter of a store."""
        return self._resolve(store).generation

    def breaker_state(self, store: Optional[str] = None) -> str:
        """Current circuit-breaker state of a store
        (``closed`` / ``open`` / ``half_open``)."""
        return self._resolve(store).breaker.state

    def _resolve(self, name: Optional[str]) -> _ManagedStore:
        with self._stores_lock:
            if not self._stores:
                raise UnknownStoreError("no stores registered")
            if name is None:
                if len(self._stores) == 1:
                    return next(iter(self._stores.values()))
                name = self._config.default_store
            managed = self._stores.get(name)
        if managed is None:
            raise UnknownStoreError(
                f"unknown store {name!r} (registered: "
                f"{', '.join(self.store_names())})"
            )
        return managed

    # ------------------------------------------------------------------
    # Comparison serving
    # ------------------------------------------------------------------

    def compare(
        self,
        pivot_attribute: str,
        value_a: str,
        value_b: str,
        target_class: str,
        attributes: Optional[Sequence[str]] = None,
        store: Optional[str] = None,
        deadline_ms: object = _UNSET,
        measure: Optional[str] = None,
    ) -> CompareOutcome:
        """Run (or serve from cache) one comparison, under a deadline.

        Raises :class:`DeadlineExceeded` when the result is not ready
        within ``deadline_ms`` (default: the engine config's deadline).
        The underlying computation is not cancelled — a later identical
        request may find it cached.
        """
        future = self.compare_async(
            pivot_attribute, value_a, value_b, target_class,
            attributes=attributes, store=store, measure=measure,
        )
        return self._await_with_deadline(future, deadline_ms)

    def default_measure(self, store: Optional[str] = None) -> str:
        """The measure a request without ``measure=`` is served under
        (the named store's comparator default)."""
        return self._resolve(store).comparator.measure

    def _measure_label(
        self, managed: "_ManagedStore", measure: Optional[str]
    ) -> str:
        """Resolve the effective measure name for one request.

        The label joins the cache key, so two requests differing only
        in measure never alias; an unknown name raises ``ValueError``
        here — before any pool submit — and maps to a 400.
        """
        if measure is None:
            return managed.comparator.measure
        return get_measure(measure).name

    def _await_with_deadline(self, future: Future, deadline_ms: object):
        """Await a compute future under the effective deadline.

        Shared by the single-store and cross-store serving paths: the
        per-request override (``deadline_ms``) beats the engine
        config's default; an overrun surfaces as the typed
        :class:`DeadlineExceeded` and the underlying computation is
        left to finish into the cache.
        """
        if deadline_ms is _UNSET:
            effective_ms: Optional[float] = (
                None
                if self._config.deadline_ms is None
                else float(self._config.deadline_ms)
            )
        elif deadline_ms is None:
            effective_ms = None
        else:
            effective_ms = float(deadline_ms)  # type: ignore[arg-type]
        timeout = None if effective_ms is None else effective_ms / 1000.0
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            self._metrics.deadline_exceeded.inc()
            annotate(outcome="deadline_exceeded", deadline_ms=effective_ms)
            raise DeadlineExceeded(
                f"comparison did not finish within {effective_ms} ms",
                deadline_ms=effective_ms,
            ) from None

    def compare_async(
        self,
        pivot_attribute: str,
        value_a: str,
        value_b: str,
        target_class: str,
        attributes: Optional[Sequence[str]] = None,
        store: Optional[str] = None,
        measure: Optional[str] = None,
    ) -> "Future[CompareOutcome]":
        """Submit a comparison to the pool; returns immediately.

        A cache hit resolves the returned future synchronously — even
        while the store's circuit breaker is open, because a live
        cached result is the one thing a degraded store can still
        serve safely.  With the breaker open and no cached result the
        call raises :class:`StoreUnavailable` immediately instead of
        returning a future.  Used by
        :func:`repro.service.batch.screen_fleet` to fan a whole fleet
        out across the pool.
        """
        managed = self._resolve(store)
        measure_label = self._measure_label(managed, measure)
        self._metrics.measure_requests.inc(measure=measure_label)
        key = (
            managed.name,
            pivot_attribute,
            value_a,
            value_b,
            target_class,
            tuple(attributes) if attributes is not None else None,
            measure_label,
        )
        generation = managed.generation
        with span(
            "cache.get", store=managed.name, measure=measure_label
        ) as cache_span:
            entry = self._cache.get(key, generation)
            cache_span.annotate(hit=entry is not None)
        if entry is not None:
            self._metrics.cache_hits.inc(store=managed.name)
            done: "Future[CompareOutcome]" = Future()
            done.set_result(
                CompareOutcome(
                    entry.result, managed.name, entry.generation, True
                )
            )
            return done
        try:
            managed.breaker.allow()
        except StoreUnavailable:
            self._metrics.breaker_rejections.inc(store=managed.name)
            annotate(breaker="open", store=managed.name)
            raise
        self._metrics.cache_misses.inc(store=managed.name)
        # ThreadPoolExecutor.submit does not copy contextvars; carry
        # the trace (and the span to nest under) to the worker thread
        # explicitly, with the submit timestamp so the worker can
        # reconstruct its queue wait.
        trace = current_trace()
        return self._pool.submit(
            self._compute, managed, key, pivot_attribute, value_a,
            value_b, target_class, attributes, measure_label,
            trace, current_span() if trace is not None else None,
            trace.now() if trace is not None else None,
        )

    def _compute(
        self,
        managed: _ManagedStore,
        key: tuple,
        pivot_attribute: str,
        value_a: str,
        value_b: str,
        target_class: str,
        attributes: Optional[Sequence[str]],
        measure: str = "paper",
        trace=None,
        parent_span=None,
        submitted: Optional[float] = None,
    ) -> CompareOutcome:
        with resume_trace(trace, parent_span):
            if trace is not None and submitted is not None:
                # Queue wait: from pool submit to this thread running.
                trace.span(
                    "engine.queue_wait",
                    parent=parent_span,
                    start=submitted,
                    store=managed.name,
                ).finish()
            with span(
                "engine.compare", store=managed.name, measure=measure
            ) as compute:
                try:
                    trip(
                        SITE_ENGINE_COMPARE,
                        store=managed.name,
                        pivot=pivot_attribute,
                        values=(value_a, value_b),
                    )
                    # Pin one snapshot for the whole comparison: every
                    # cube/dataset read the comparator makes sees the
                    # same frozen world even if an absorb lands
                    # mid-compute, and the generation the result is
                    # cached under is exactly that snapshot's.
                    with managed.store.pinned() as snapshot:
                        generation = snapshot.generation
                        result = managed.comparator.compare(
                            pivot_attribute, value_a, value_b,
                            target_class, attributes=attributes,
                            measure=measure,
                        )
                except (ValueError, KeyError) as exc:
                    # The client's fault (unknown attribute/value,
                    # empty sub-population): the store itself answered
                    # fine, so the failure streak resets.
                    managed.breaker.record_success()
                    compute.annotate(error=type(exc).__name__)
                    raise
                except Exception as exc:
                    managed.breaker.record_failure()
                    self._metrics.compare_failures.inc(
                        store=managed.name, error=type(exc).__name__
                    )
                    # Traces are client-visible (?trace=1 and
                    # /debug/traces), so an unexpected failure stays as
                    # generic here as in the 500 body; the class name
                    # lives in the server log and /metrics.
                    compute.annotate(
                        error="internal",
                        breaker=managed.breaker.state,
                    )
                    raise
                managed.breaker.record_success()
                with span("cache.put", store=managed.name):
                    self._cache.put(key, generation, result)
                compute.annotate(generation=generation)
                return CompareOutcome(
                    result, managed.name, generation, False
                )

    def compare_across(
        self,
        store_a: str,
        store_b: str,
        pivot_attribute: str,
        value_a: str,
        value_b: str,
        target_class: str,
        attributes: Optional[Sequence[str]] = None,
        deadline_ms: object = _UNSET,
        measure: Optional[str] = None,
    ) -> CrossCompareOutcome:
        """Compare ``value_a`` in one store against ``value_b`` in
        another, under a deadline.

        The §V.C workload: good-slice counts come from
        ``store_a``'s world, bad-slice counts from ``store_b``'s (the
        comparator may swap which side plays which role).  Deadline
        and caching semantics match :meth:`compare`.
        """
        future = self.compare_across_async(
            store_a, store_b, pivot_attribute, value_a, value_b,
            target_class, attributes=attributes, measure=measure,
        )
        return self._await_with_deadline(future, deadline_ms)

    def compare_across_async(
        self,
        store_a: str,
        store_b: str,
        pivot_attribute: str,
        value_a: str,
        value_b: str,
        target_class: str,
        attributes: Optional[Sequence[str]] = None,
        measure: Optional[str] = None,
    ) -> "Future[CrossCompareOutcome]":
        """Submit a cross-store comparison; returns immediately.

        Results are cached under both stores' generations — an absorb
        into *either* store invalidates the entry.  Both circuit
        breakers must admit the request (a cache hit is still served
        with breakers open, as in :meth:`compare_async`).
        """
        managed_a = self._resolve(store_a)
        managed_b = self._resolve(store_b)
        measure_label = self._measure_label(managed_a, measure)
        self._metrics.measure_requests.inc(measure=measure_label)
        key = (
            "cross",
            managed_a.name,
            managed_b.name,
            pivot_attribute,
            value_a,
            value_b,
            target_class,
            tuple(attributes) if attributes is not None else None,
            measure_label,
        )
        generation = (managed_a.generation, managed_b.generation)
        with span(
            "cache.get",
            store=managed_a.name,
            store_b=managed_b.name,
            measure=measure_label,
        ) as cache_span:
            entry = self._cache.get(key, generation)
            cache_span.annotate(hit=entry is not None)
        if entry is not None:
            self._metrics.cache_hits.inc(store=managed_a.name)
            done: "Future[CrossCompareOutcome]" = Future()
            done.set_result(
                CrossCompareOutcome(
                    entry.result, managed_a.name, managed_b.name,
                    entry.generation[0], entry.generation[1], True,
                )
            )
            return done
        for managed in (managed_a, managed_b):
            try:
                managed.breaker.allow()
            except StoreUnavailable:
                self._metrics.breaker_rejections.inc(store=managed.name)
                annotate(breaker="open", store=managed.name)
                raise
        self._metrics.cache_misses.inc(store=managed_a.name)
        trace = current_trace()
        return self._pool.submit(
            self._compute_across, managed_a, managed_b, key,
            pivot_attribute, value_a, value_b, target_class, attributes,
            measure_label,
            trace, current_span() if trace is not None else None,
            trace.now() if trace is not None else None,
        )

    def _compute_across(
        self,
        managed_a: _ManagedStore,
        managed_b: _ManagedStore,
        key: tuple,
        pivot_attribute: str,
        value_a: str,
        value_b: str,
        target_class: str,
        attributes: Optional[Sequence[str]],
        measure: str = "paper",
        trace=None,
        parent_span=None,
        submitted: Optional[float] = None,
    ) -> CrossCompareOutcome:
        with resume_trace(trace, parent_span):
            if trace is not None and submitted is not None:
                trace.span(
                    "engine.queue_wait",
                    parent=parent_span,
                    start=submitted,
                    store=managed_a.name,
                ).finish()
            with span(
                "engine.compare_across",
                store_a=managed_a.name,
                store_b=managed_b.name,
                measure=measure,
            ) as compute:
                try:
                    trip(
                        SITE_ENGINE_COMPARE,
                        store=managed_a.name,
                        store_b=managed_b.name,
                        pivot=pivot_attribute,
                        values=(value_a, value_b),
                    )
                    # Pin both worlds: each side's reads resolve
                    # against one frozen snapshot, and the pair of
                    # generations the result is cached under is
                    # exactly what it was computed from.
                    with managed_a.store.pinned() as snap_a:
                        with managed_b.store.pinned() as snap_b:
                            generation = (
                                snap_a.generation, snap_b.generation
                            )
                            result = (
                                managed_a.comparator.compare_across(
                                    managed_b.store, pivot_attribute,
                                    value_a, value_b, target_class,
                                    attributes=attributes,
                                    measure=measure,
                                )
                            )
                except (ValueError, KeyError) as exc:
                    # The request's fault; both stores answered fine.
                    managed_a.breaker.record_success()
                    managed_b.breaker.record_success()
                    compute.annotate(error=type(exc).__name__)
                    raise
                except Exception as exc:
                    # An infrastructure failure mid-compare cannot
                    # always be attributed to one side (a shard read
                    # error names its shard but not its store), so
                    # both breakers count it — conservative, and a
                    # healthy store's breaker closes again on its
                    # next success.
                    managed_a.breaker.record_failure()
                    managed_b.breaker.record_failure()
                    self._metrics.compare_failures.inc(
                        store=managed_a.name, error=type(exc).__name__
                    )
                    compute.annotate(
                        error="internal",
                        breaker=managed_a.breaker.state,
                    )
                    raise
                managed_a.breaker.record_success()
                managed_b.breaker.record_success()
                with span("cache.put", store=managed_a.name):
                    self._cache.put(key, generation, result)
                compute.annotate(
                    generation_a=generation[0],
                    generation_b=generation[1],
                )
                return CrossCompareOutcome(
                    result, managed_a.name, managed_b.name,
                    generation[0], generation[1], False,
                )

    def screen_pairs_batch(
        self,
        pivot_attribute: str,
        value_pairs: Sequence[Tuple[str, str]],
        target_class: str,
        attributes: Optional[Sequence[str]] = None,
        store: Optional[str] = None,
        measure: Optional[str] = None,
    ) -> BatchScreenOutcome:
        """Score many pivot value pairs in one shared-slice pass.

        Runs :meth:`~repro.core.Comparator.compare_value_pairs`
        against one pinned store snapshot: every ``(pivot, A_i)`` cube
        is fetched and sliced once for the whole batch and all pairs
        go through the vectorized kernel, instead of one full
        comparison per pair across the worker pool.  Breaker bookkeeping matches
        :meth:`compare` — an infrastructure failure during the shared
        fetch counts one failure (it would have failed every pair) —
        and each successful pair lands in the result cache under the
        same key :meth:`compare_async` uses, so later point lookups
        and non-batch screens are warmed by a batch screen.

        Kernel-vs-plumbing wall-clock lands in the
        ``repro_fleet_kernel_seconds`` / ``repro_fleet_plumbing_seconds``
        histograms.
        """
        managed = self._resolve(store)
        measure_label = self._measure_label(managed, measure)
        self._metrics.measure_requests.inc(measure=measure_label)
        try:
            managed.breaker.allow()
        except StoreUnavailable:
            self._metrics.breaker_rejections.inc(store=managed.name)
            annotate(breaker="open", store=managed.name)
            raise
        with span(
            "engine.screen_batch",
            store=managed.name,
            pairs=len(value_pairs),
            measure=measure_label,
        ) as batch_span:
            try:
                trip(
                    SITE_ENGINE_COMPARE,
                    store=managed.name,
                    pivot=pivot_attribute,
                    pairs=len(value_pairs),
                )
                with managed.store.pinned() as snapshot:
                    generation = snapshot.generation
                    screen = managed.comparator.compare_value_pairs(
                        pivot_attribute, value_pairs, target_class,
                        attributes=attributes, measure=measure_label,
                    )
            except (ValueError, KeyError) as exc:
                # The request's fault; the store itself is healthy.
                managed.breaker.record_success()
                batch_span.annotate(error=type(exc).__name__)
                raise
            except Exception as exc:
                managed.breaker.record_failure()
                self._metrics.compare_failures.inc(
                    store=managed.name, error=type(exc).__name__
                )
                batch_span.annotate(
                    error="internal",
                    breaker=managed.breaker.state,
                )
                raise
        managed.breaker.record_success()
        attrs_key = (
            tuple(attributes) if attributes is not None else None
        )
        for (value_a, value_b), outcome in screen.outcomes:
            if isinstance(outcome, ComparisonResult):
                key = (
                    managed.name, pivot_attribute, value_a, value_b,
                    target_class, attrs_key, measure_label,
                )
                self._cache.put(key, generation, outcome)
        self._metrics.fleet_kernel_seconds.observe(
            screen.timings.kernel_seconds, store=managed.name
        )
        self._metrics.fleet_plumbing_seconds.observe(
            screen.timings.plumbing_seconds, store=managed.name
        )
        return BatchScreenOutcome(screen, managed.name, generation)

    def explain(
        self,
        pivot_attribute: str,
        value_a: str,
        value_b: str,
        target_class: str,
        attribute: str,
        top: int = 3,
        attributes: Optional[Sequence[str]] = None,
        store: Optional[str] = None,
        deadline_ms: object = _UNSET,
        measure: Optional[str] = None,
    ) -> ExplainOutcome:
        """Why is ``attribute`` ranked where it is? — served.

        Rides the exact compare pipeline (same cache key, deadline,
        breaker and trace treatment as :meth:`compare`), then drills
        into one attribute via
        :meth:`~repro.core.comparator.Comparator.explain_result`.  An
        ``/explain`` following a ``/compare`` on the same request tuple
        is therefore a cache hit plus one sort.  Unknown attributes
        raise :class:`KeyError` (a 400 over HTTP).
        """
        managed = self._resolve(store)
        measure_label = self._measure_label(managed, measure)
        future = self.compare_async(
            pivot_attribute, value_a, value_b, target_class,
            attributes=attributes, store=store, measure=measure,
        )
        outcome = self._await_with_deadline(future, deadline_ms)
        with span(
            "engine.explain",
            store=outcome.store,
            attribute=attribute,
            measure=measure_label,
        ):
            explanation = Comparator.explain_result(
                outcome.result, attribute, top=top,
                measure=measure_label,
            )
        self._metrics.explain_requests.inc(store=outcome.store)
        return ExplainOutcome(
            explanation=explanation,
            store=outcome.store,
            generation=outcome.generation,
            cache_hit=outcome.cache_hit,
            measure=measure_label,
        )

    # ------------------------------------------------------------------
    # Ingest (the single writer)
    # ------------------------------------------------------------------

    def ingest(
        self, rows: Sequence[Row], store: Optional[str] = None
    ) -> IngestOutcome:
        """Absorb a batch of records into a store.

        ``rows`` are either sequences in schema column order or
        mappings keyed by attribute name (missing attributes code as
        missing values).  The batch merges into every materialised
        cube via :meth:`~repro.cube.CubeStore.absorb` — all delta
        counting runs outside any reader-visible lock, then the new
        snapshot installs atomically and the generation bumps: from
        that point every cached result computed against the old counts
        is stale and will be recomputed on demand.

        A zero-row batch is a complete no-op — no absorb, no
        generation bump, no cache invalidation — so health-check-style
        empty posts cannot evict a warm cache.

        When the engine was configured with ``ingest_coalesce_ms``,
        concurrent batches within the window are merged into one
        absorb; the outcome's ``coalesced`` flag reports whether that
        happened.

        In a pre-fork worker process an installed forwarder
        (:meth:`set_ingest_forwarder`) routes the raw batch to the
        parent — the single writer — and returns (or raises) whatever
        the parent decided, so the HTTP error contract is identical in
        both serving modes.
        """
        if self._ingest_forwarder is not None:
            return self._ingest_forwarder(rows, store)
        managed = self._resolve(store)
        schema = managed.store.dataset.schema
        with span(
            "ingest.encode", store=managed.name
        ) as encode_span:
            batch = self._rows_to_dataset(schema, rows)
            encode_span.annotate(rows=batch.n_rows)
        if batch.n_rows == 0:
            return IngestOutcome(
                managed.name, 0, 0, managed.generation, False
            )
        self._admit_ingest(managed)
        try:
            if managed.coalescer is not None:
                updated, generation, n_merged = (
                    managed.coalescer.ingest(batch)
                )
                return IngestOutcome(
                    managed.name, batch.n_rows, updated, generation,
                    n_merged > 1,
                )
            updated, generation = self._absorb(managed, batch)
            return IngestOutcome(
                managed.name, batch.n_rows, updated, generation, False
            )
        finally:
            self._release_ingest(managed)

    def ingest_backlog(self, store: Optional[str] = None) -> int:
        """Batches admitted but not yet absorbed for a store."""
        managed = self._resolve(store)
        with managed.pending_lock:
            return managed.pending

    def _admit_ingest(self, managed: _ManagedStore) -> None:
        """Count this batch against the store's backlog, or reject.

        The watermark (``ServiceConfig.ingest_high_watermark``) bounds
        batches that are admitted but not yet absorbed — requests
        queueing on the ingest lock, piling into a coalescer window,
        or mid-absorb.  At the watermark the request is rejected with
        :class:`IngestOverloaded` *before* it holds any memory or lock,
        carrying a ``Retry-After`` sized from the recent absorb EWMA
        times the backlog depth: approximately when the current queue
        will have drained.
        """
        watermark = self._config.ingest_high_watermark
        with managed.pending_lock:
            if watermark is not None and managed.pending >= watermark:
                backlog = managed.pending
                ewma = managed.absorb_ewma
                self._metrics.ingest_rejections.inc(store=managed.name)
                annotate(
                    outcome="ingest_overloaded", backlog=backlog
                )
                raise IngestOverloaded(
                    managed.name,
                    retry_after=max(0.1, backlog * max(ewma, 0.05)),
                    backlog=backlog,
                )
            managed.pending += 1
            pending = managed.pending
        self._metrics.ingest_backlog.set(pending, store=managed.name)

    def _release_ingest(self, managed: _ManagedStore) -> None:
        with managed.pending_lock:
            managed.pending = max(0, managed.pending - 1)
            pending = managed.pending
        self._metrics.ingest_backlog.set(pending, store=managed.name)

    def _absorb(
        self, managed: _ManagedStore, batch: Dataset
    ) -> Tuple[int, int]:
        """One serialized store absorb, with spans and metrics."""
        with managed.ingest_lock:
            with span(
                "ingest.absorb",
                store=managed.name,
                rows=batch.n_rows,
            ) as absorb_span:
                started = time.perf_counter()
                updated = managed.store.absorb(
                    batch, executor=self._pool
                )
                elapsed = time.perf_counter() - started
                absorb_span.annotate(cubes=updated)
            generation = managed.store.generation
        self._metrics.ingest_batch_rows.observe(
            batch.n_rows, store=managed.name
        )
        self._metrics.ingest_absorb_seconds.observe(
            elapsed, store=managed.name
        )
        self._metrics.ingested_records.inc(
            batch.n_rows, store=managed.name
        )
        # Recent absorb latency (EWMA) sizes overload Retry-After
        # hints; no lock needed beyond pending_lock — absorbs already
        # serialise on the ingest lock.
        with managed.pending_lock:
            managed.absorb_ewma = (
                elapsed
                if managed.absorb_ewma == 0.0
                else 0.7 * managed.absorb_ewma + 0.3 * elapsed
            )
        retention = getattr(managed.store, "retention_info", None)
        if callable(retention):
            self._metrics.snapshot_pinned_generations.set(
                retention()["pinned_generations"], store=managed.name
            )
        return updated, generation

    @staticmethod
    def _rows_to_dataset(schema, rows: Sequence[Row]) -> Dataset:
        if not isinstance(rows, Sequence) or isinstance(rows, (str, bytes)):
            raise EngineError("rows must be a list of records")
        names = schema.names
        normalised: List[Tuple[object, ...]] = []
        for i, row in enumerate(rows):
            if isinstance(row, Mapping):
                unknown = set(row) - set(names)
                if unknown:
                    raise EngineError(
                        f"row {i} has unknown attributes: "
                        f"{sorted(unknown)}"
                    )
                normalised.append(
                    tuple(row.get(name, "?") for name in names)
                )
            elif isinstance(row, Sequence) and not isinstance(
                row, (str, bytes)
            ):
                if len(row) != len(names):
                    raise EngineError(
                        f"row {i} has {len(row)} fields; expected "
                        f"{len(names)} ({', '.join(names)})"
                    )
                normalised.append(tuple(row))
            else:
                raise EngineError(
                    f"row {i} must be a list or an object, not "
                    f"{type(row).__name__}"
                )
        return Dataset.from_rows(schema, normalised)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def cache_len(self) -> int:
        """Number of live entries in the result cache."""
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()

    def set_ingest_forwarder(
        self,
        forwarder: Optional[
            Callable[[Sequence[Row], Optional[str]], IngestOutcome]
        ],
    ) -> None:
        """Route :meth:`ingest` through ``forwarder`` (``None`` clears).

        Installed in pre-fork workers, whose stores are read-only
        shared-memory attachments: the forwarder ships the batch to
        the parent process and blocks until the parent has absorbed
        *and republished*, then returns the parent's
        :class:`IngestOutcome` or re-raises its typed error.
        """
        self._ingest_forwarder = forwarder

    def close_wals(self) -> None:
        """Close every store's write-ahead log (idempotent).

        Part of graceful shutdown: after the HTTP server has drained
        and the pool has stopped, closing the logs flushes their
        buffers so a SIGTERM never leaves a torn final record behind.
        """
        with self._stores_lock:
            managed = list(self._stores.values())
        for m in managed:
            if m.wal is None:
                continue
            close = getattr(m.wal, "close", None)
            if callable(close):
                try:
                    close()
                except OSError:
                    pass  # already closed / fs went away mid-shutdown

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool.  The engine is unusable afterwards."""
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "ComparisonEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"ComparisonEngine({len(self.store_names())} stores, "
            f"{self._config.workers} workers, "
            f"cache {self.cache_len()}/{self._config.cache_size})"
        )

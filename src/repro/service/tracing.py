"""Per-request tracing: where did this comparison spend its time?

The paper sells Opportunity Map on *interactivity* — an engineer sits
at a console iterating on comparisons, so every slow or failed request
deserves an explanation, not just a latency-histogram bucket.  This
module supplies that explanation as a per-request **trace**: a tree of
named, monotonic-clock-timed spans (``http.dispatch`` →
``engine.compare`` → ``store.planes``/``cube.build`` →
``kernel.score`` → cache get/put; on the write path
``ingest.encode`` → ``ingest.coalesce`` → ``ingest.absorb`` →
``ingest.swap``) carried across threads by
``contextvars`` and recorded thread-safely, because one request's
spans are opened on the HTTP handler thread *and* on the engine's
worker pool.

Three consumers, all wired in :mod:`repro.service.http`:

* a ``?trace=1`` / ``"trace": true`` request option returns the span
  tree inline with the response;
* a bounded in-memory :class:`TraceBuffer` keeps the N most recent and
  N slowest traces for ``GET /debug/traces`` (plus a slow-request
  threshold that logs a structured one-line summary);
* a :class:`TraceLogWriter` appends every finished trace as one JSON
  line (``repro serve --trace-log PATH``).

Design constraints:

* **stdlib only, no intra-package imports** — the cube store and the
  comparator (lower layers) call :func:`span` directly, so this module
  must be importable without dragging in the engine or the HTTP
  server (``repro/service/__init__.py`` is lazy for the same reason);
* **zero cost when idle** — with no active trace, :func:`span` is one
  ``ContextVar`` read and yields a shared null span, cheap enough to
  leave in every hot path (the same contract as
  :mod:`repro.testing.sites`);
* **safe to snapshot live** — a deadline overrun sends the response
  while the worker thread is still appending spans; every tree walk
  and mutation takes the trace's lock, and open spans serialise with
  their duration so far.
"""

from __future__ import annotations

import contextvars
import json
import heapq
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "Trace",
    "TraceBuffer",
    "TraceLogWriter",
    "span",
    "annotate",
    "current_trace",
    "current_span",
    "start_trace",
    "resume_trace",
    "new_request_id",
    "sanitize_request_id",
    "slow_summary",
    "set_worker_id",
    "worker_id",
]

#: Request ids beyond this length are replaced, not truncated — a
#: truncated id would silently collide with another client's.
MAX_REQUEST_ID_LENGTH = 128

#: Pre-fork worker slot of this process, or ``None`` in the classic
#: single-process server.  Process-wide on purpose: one worker process
#: serves exactly one slot for its whole life.
_WORKER_ID: Optional[int] = None


def set_worker_id(slot: Optional[int]) -> None:
    """Tag this process as pre-fork worker ``slot``.

    Called once right after fork; every trace recorded afterwards
    carries a ``worker`` field so a slow request in an aggregated
    trace log can be attributed to the process that served it.
    """
    global _WORKER_ID
    _WORKER_ID = None if slot is None else int(slot)


def worker_id() -> Optional[int]:
    """This process's pre-fork worker slot (``None`` when not forked)."""
    return _WORKER_ID


def new_request_id() -> str:
    """A fresh opaque request id (32 hex chars)."""
    return uuid.uuid4().hex


def sanitize_request_id(raw: object) -> str:
    """A client-supplied ``X-Request-Id``, or a fresh id if unusable.

    Only printable ASCII without spaces is accepted: the id is echoed
    back as a response *header*, so anything that could smuggle a CR/LF
    (header injection) or control bytes is discarded wholesale rather
    than repaired.
    """
    if isinstance(raw, str):
        candidate = raw.strip()
        if 0 < len(candidate) <= MAX_REQUEST_ID_LENGTH and all(
            33 <= ord(ch) <= 126 for ch in candidate
        ):
            return candidate
    return new_request_id()


def _json_safe(value: Any) -> Any:
    """Coerce an annotation value into something ``json.dumps`` takes."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


class Span:
    """One timed operation inside a trace.

    Spans are created through :meth:`Trace.span` (or the module-level
    :func:`span` context manager) and never outlive their trace.
    ``started``/``ended`` are monotonic-clock readings; an unfinished
    span reports its duration so far.
    """

    __slots__ = ("name", "started", "ended", "annotations", "children",
                 "_trace")

    def __init__(
        self,
        name: str,
        trace: "Trace",
        started: float,
        annotations: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self._trace = trace
        self.started = started
        self.ended: Optional[float] = None
        self.annotations: Dict[str, Any] = dict(annotations or {})
        self.children: List["Span"] = []

    def annotate(self, **annotations: Any) -> "Span":
        """Attach key/value context to the span (merged, last wins)."""
        with self._trace._lock:
            self.annotations.update(annotations)
        return self

    def finish(self) -> "Span":
        """Close the span at the trace clock's current reading.

        Idempotent: the first call wins, so a span cannot shrink or
        grow after it has been reported.
        """
        with self._trace._lock:
            if self.ended is None:
                self.ended = self._trace.now()
        return self

    @property
    def duration_ms(self) -> float:
        """Span duration in milliseconds (so-far when still open)."""
        end = self.ended if self.ended is not None else self._trace.now()
        return (end - self.started) * 1000.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe nested rendering of the span subtree."""
        with self._trace._lock:
            return self._to_dict(self._trace.root.started)

    def _to_dict(self, origin: float) -> Dict[str, Any]:
        # Caller holds the trace lock.
        end = self.ended if self.ended is not None else self._trace.now()
        out: Dict[str, Any] = {
            "name": self.name,
            "start_ms": round((self.started - origin) * 1000.0, 3),
            "duration_ms": round((end - self.started) * 1000.0, 3),
        }
        if self.ended is None:
            out["in_flight"] = True
        if self.annotations:
            out["annotations"] = {
                str(k): _json_safe(v)
                for k, v in self.annotations.items()
            }
        if self.children:
            out["children"] = [c._to_dict(origin) for c in self.children]
        return out


class _NullSpan:
    """The shared do-nothing span yielded when no trace is active."""

    __slots__ = ()

    def annotate(self, **annotations: Any) -> "_NullSpan":
        return self

    def finish(self) -> "_NullSpan":
        return self

    @property
    def duration_ms(self) -> float:
        return 0.0


NULL_SPAN = _NullSpan()


class Trace:
    """One request's span tree, shared safely across threads.

    Parameters
    ----------
    request_id:
        Propagated id of the request (default: a fresh one).
    name:
        Name of the root span (the HTTP layer uses ``http.dispatch``).
    clock:
        Monotonic clock; injectable so tests drive timings
        deterministically.
    """

    def __init__(
        self,
        request_id: Optional[str] = None,
        name: str = "request",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.request_id = request_id or new_request_id()
        self._clock = clock
        self._lock = threading.Lock()
        # Paired clock anchors, read back-to-back: the wall reading
        # names the same instant the monotonic reading does, so every
        # exported wall-clock timestamp is *derived* from monotonic
        # span times via wall_time().  Previously started_at was an
        # independent time.time() call while spans ran on the
        # monotonic clock — the two could disagree by an NTP step (or
        # by an injected test clock), skewing exported timestamps
        # against span arithmetic.
        self._wall_anchor = time.time()
        self._monotonic_anchor = clock()
        self.root = Span(name, self, self._monotonic_anchor)

    def now(self) -> float:
        return self._clock()

    def wall_time(self, at: float) -> float:
        """The wall-clock instant of monotonic reading ``at``.

        Exact for any span recorded by this trace: offsets from the
        monotonic anchor are translated onto the wall anchor captured
        at the same moment, so derived timestamps stay consistent with
        span durations even if the system clock steps mid-request.
        """
        return self._wall_anchor + (at - self._monotonic_anchor)

    @property
    def started_at(self) -> float:
        """Wall-clock time of the root span's start (derived)."""
        return self.wall_time(self.root.started)

    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        start: Optional[float] = None,
        **annotations: Any,
    ) -> Span:
        """Open a child span under ``parent`` (default: the root).

        ``start`` back-dates the span to an earlier clock reading —
        the engine uses it to reconstruct queue wait from the submit
        timestamp once the worker thread finally runs.
        """
        parent = parent if parent is not None else self.root
        child = Span(
            name,
            self,
            start if start is not None else self._clock(),
            annotations,
        )
        with self._lock:
            parent.children.append(child)
        return child

    def finish(self) -> "Trace":
        """Close the root span (child spans close individually)."""
        self.root.finish()
        return self

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering of the whole trace."""
        with self._lock:
            return {
                "request_id": self.request_id,
                "started_at": self.started_at,
                "duration_ms": round(self.root.duration_ms, 3),
                "root": self.root._to_dict(self.root.started),
            }


_TRACE: "contextvars.ContextVar[Optional[Trace]]" = contextvars.ContextVar(
    "repro_trace", default=None
)
_SPAN: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_span", default=None
)


def current_trace() -> Optional[Trace]:
    """The trace active in this context, or ``None``."""
    return _TRACE.get()


def current_span() -> Optional[Span]:
    """The innermost open span in this context, or ``None``."""
    return _SPAN.get()


@contextmanager
def start_trace(
    request_id: Optional[str] = None,
    name: str = "request",
    clock: Callable[[], float] = time.monotonic,
) -> Iterator[Trace]:
    """Activate a fresh trace for the duration of the block.

    The root span opens on entry and finishes on exit; nested
    :func:`span` calls (on this thread or any thread that resumed the
    trace) attach beneath it.
    """
    trace = Trace(request_id, name=name, clock=clock)
    trace_token = _TRACE.set(trace)
    span_token = _SPAN.set(trace.root)
    try:
        yield trace
    finally:
        _SPAN.reset(span_token)
        _TRACE.reset(trace_token)
        trace.finish()


@contextmanager
def resume_trace(
    trace: Optional[Trace], parent: Optional[Span] = None
) -> Iterator[None]:
    """Re-activate ``trace`` on another thread.

    ``ThreadPoolExecutor.submit`` does not copy contextvars, so the
    engine captures ``(current_trace(), current_span())`` at submit
    time and wraps the worker body in this context manager; spans the
    worker opens then nest under the submitting request's ``parent``.
    A ``None`` trace makes the whole block a no-op, so callers never
    branch.
    """
    if trace is None:
        yield
        return
    trace_token = _TRACE.set(trace)
    span_token = _SPAN.set(parent if parent is not None else trace.root)
    try:
        yield
    finally:
        _SPAN.reset(span_token)
        _TRACE.reset(trace_token)


@contextmanager
def span(name: str, **annotations: Any):
    """Open a span under the current one — or do nothing.

    The production hot paths (cube reads, kernel scoring, cache
    lookups) call this unconditionally; with no active trace the cost
    is one ``ContextVar`` read and the shared :data:`NULL_SPAN` is
    yielded, so instrumented code never checks for tracing itself.
    """
    trace = _TRACE.get()
    if trace is None:
        yield NULL_SPAN
        return
    child = trace.span(name, parent=_SPAN.get(), **annotations)
    token = _SPAN.set(child)
    try:
        yield child
    finally:
        _SPAN.reset(token)
        child.finish()


def annotate(**annotations: Any) -> None:
    """Attach context to the innermost open span, if any."""
    current = _SPAN.get()
    if current is not None:
        current.annotate(**annotations)


class TraceBuffer:
    """Bounded in-memory retention: N most recent + N slowest traces.

    Stores finished-trace *payloads* (plain dicts from
    :meth:`Trace.to_dict`, plus whatever summary fields the recorder
    merged in), never live traces, so a buffered entry can not mutate
    after the fact.  ``capacity`` bounds each list independently;
    ``0`` disables retention entirely.  Thread-safe.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._recent: "deque[Dict[str, Any]]" = deque(
            maxlen=capacity if capacity else 1
        )
        # Min-heap of (duration_ms, seq, payload): the fastest of the
        # retained slow set sits on top and is evicted first.
        self._slowest: List[Tuple[float, int, Dict[str, Any]]] = []
        self._seq = 0
        self._recorded = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._recent)

    def record(self, payload: Dict[str, Any]) -> None:
        """Retain one finished trace payload (``duration_ms`` keyed)."""
        if self._capacity == 0:
            return
        duration = float(payload.get("duration_ms", 0.0))
        with self._lock:
            self._seq += 1
            self._recorded += 1
            self._recent.append(payload)
            heapq.heappush(self._slowest, (duration, self._seq, payload))
            while len(self._slowest) > self._capacity:
                heapq.heappop(self._slowest)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view: recent newest-first, slowest slowest-first."""
        with self._lock:
            recent = list(self._recent)
            slowest = sorted(
                self._slowest, key=lambda item: (-item[0], item[1])
            )
            recorded = self._recorded
        return {
            "capacity": self._capacity,
            "recorded": recorded,
            "recent": list(reversed(recent)),
            "slowest": [payload for _, _, payload in slowest],
        }


class TraceLogWriter:
    """Append-only JSONL exporter (``repro serve --trace-log PATH``).

    One finished trace per line, flushed immediately so a tailing
    process sees requests as they complete.  Writes after
    :meth:`close` are silently dropped — the server's shutdown path
    races its last in-flight handlers.
    """

    def __init__(self, path: object) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def write(self, payload: Dict[str, Any]) -> None:
        line = json.dumps(payload, separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "TraceLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def slow_summary(payload: Dict[str, Any]) -> str:
    """One structured log line summarising a slow request.

    ``key=value`` pairs plus the top-level span breakdown, newline-free
    by construction so it stays one grep-able record.
    """
    root = payload.get("root") or {}
    parts = [
        "slow request",
        f"request_id={payload.get('request_id', '-')}",
        f"endpoint={payload.get('endpoint', '-')}",
        f"status={payload.get('status', '-')}",
        f"duration_ms={payload.get('duration_ms', 0.0):.1f}",
    ]
    for child in root.get("children", ()):
        name = str(child.get("name", "?")).replace(" ", "_")
        parts.append(f"{name}={child.get('duration_ms', 0.0):.1f}ms")
    return " ".join(parts).replace("\n", " ")

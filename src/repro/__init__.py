"""repro — reproduction of *Finding Actionable Knowledge via Automated
Comparison* (Zhang, Liu, Benkler, Zhou; ICDE 2009).

The package rebuilds Motorola's Opportunity Map system from scratch:

* ``repro.dataset`` — columnar classification data, discretisation,
  class-aware sampling, IO;
* ``repro.rules`` — class association rules, Apriori, restricted
  mining, and the selective learners the paper contrasts against;
* ``repro.cube`` — rule cubes, vectorised construction, OLAP
  operations (slice / dice / roll-up / drill-down), the cube store;
* ``repro.core`` — **the paper's contribution**: the automated
  comparator ranking attributes by how well they distinguish two
  sub-populations (Section IV's interestingness measure, confidence
  intervals, property-attribute detection);
* ``repro.gi`` — general impressions: trends, exceptions, influence;
* ``repro.baselines`` — related-work baselines (rule ranking,
  discovery-driven cube exceptions, naive comparison);
* ``repro.viz`` — text/SVG renderings of the paper's views;
* ``repro.synth`` — synthetic call logs with planted ground truth;
* ``repro.workbench`` — the end-to-end ``OpportunityMap`` facade;
* ``repro.service`` — the serving layer: a concurrent comparison
  engine with a generation-aware result cache, a stdlib JSON/HTTP
  API, parallel fleet screening, and Prometheus-format metrics.

Quickstart::

    from repro import OpportunityMap
    from repro.synth import generate_call_logs, paper_example_config

    data = generate_call_logs(paper_example_config())
    om = OpportunityMap(data)
    result = om.compare("PhoneModel", "ph1", "ph2", "dropped")
    print(om.comparison_view(result))
"""

from .dataset import (
    Attribute,
    Dataset,
    Schema,
    discretize_dataset,
    read_csv,
    unbalanced_sample,
    write_csv,
)
from .rules import (
    ClassAssociationRule,
    Condition,
    mine_cars,
    restricted_mine,
)
from .cube import (
    CubeStore,
    RuleCube,
    build_cube,
    dice_cube,
    drill_down,
    rollup,
    slice_cube,
)
from .core import (
    AttributeInterest,
    Comparator,
    ComparisonResult,
    PairwiseReport,
    ValueContribution,
    compare_all_pairs,
    compare_from_data,
    interestingness,
)
from .rules import RuleQuery
from .synth import (
    CallLogConfig,
    PlantedEffect,
    generate_call_logs,
    paper_example_config,
    synthetic_dataset,
)
from .workbench import OpportunityMap, Session
from .service import (
    ComparisonEngine,
    ComparisonHTTPServer,
    DeadlineExceeded,
    ServiceConfig,
    screen_fleet,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # dataset
    "Attribute",
    "Schema",
    "Dataset",
    "discretize_dataset",
    "unbalanced_sample",
    "read_csv",
    "write_csv",
    # rules
    "Condition",
    "ClassAssociationRule",
    "mine_cars",
    "restricted_mine",
    # cube
    "RuleCube",
    "CubeStore",
    "build_cube",
    "slice_cube",
    "dice_cube",
    "rollup",
    "drill_down",
    # core
    "Comparator",
    "ComparisonResult",
    "AttributeInterest",
    "ValueContribution",
    "compare_from_data",
    "compare_all_pairs",
    "PairwiseReport",
    "interestingness",
    "RuleQuery",
    # synth
    "PlantedEffect",
    "CallLogConfig",
    "generate_call_logs",
    "paper_example_config",
    "synthetic_dataset",
    # workbench
    "OpportunityMap",
    "Session",
    # service
    "ComparisonEngine",
    "ComparisonHTTPServer",
    "ServiceConfig",
    "DeadlineExceeded",
    "screen_fleet",
]

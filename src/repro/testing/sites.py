"""Named fault sites the production code exposes.

Resilience cannot be tested through interfaces that only exist in
tests: monkeypatched failures exercise the patch, not the system.
Instead, the production modules *declare* the places where the outside
world can hurt them — a cube read, a comparison compute, an HTTP
handler, an archive load — by calling :func:`trip` with a well-known
site name.  When nothing is installed (the production default) a trip
is a single list check, cheap enough to leave in every hot path.

A chaos run installs one or more :class:`~repro.testing.faults
.FaultPlan` objects (anything with a ``fire(site, **context)`` method
works); every subsequent trip offers each installed plan the chance to
inject latency or raise a typed failure at that site.

The registry is process-global on purpose: the fault plan must reach
code running on *other* threads (the engine's worker pool, the HTTP
server's handler threads), which rules out anything scoped to the
installing thread.  Install/uninstall are the only mutations and both
are locked; :func:`installed` is the context-manager form chaos tests
use so a failing test can never leak its faults into the next one.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, List, Tuple

__all__ = [
    "SITES",
    "SITE_STORE_CUBE",
    "SITE_STORE_ABSORB",
    "SITE_SHARD_READ",
    "SITE_ENGINE_COMPARE",
    "SITE_HTTP_HANDLER",
    "SITE_PERSIST_LOAD",
    "SITE_WAL_APPEND",
    "SITE_WAL_REPLAY",
    "SITE_BACKEND_SCAN",
    "trip",
    "install",
    "uninstall",
    "installed",
    "active_plans",
]

SITE_STORE_CUBE = "store.cube"
SITE_STORE_ABSORB = "store.absorb"
SITE_SHARD_READ = "shard.read"
SITE_ENGINE_COMPARE = "engine.compare"
SITE_HTTP_HANDLER = "http.handler"
SITE_PERSIST_LOAD = "persist.load"
SITE_WAL_APPEND = "wal.append"
SITE_WAL_REPLAY = "wal.replay"
SITE_BACKEND_SCAN = "backend.scan"

#: Every site the production code declares, for validation and docs.
SITES: Tuple[str, ...] = (
    SITE_STORE_CUBE,
    SITE_STORE_ABSORB,
    SITE_SHARD_READ,
    SITE_ENGINE_COMPARE,
    SITE_HTTP_HANDLER,
    SITE_PERSIST_LOAD,
    SITE_WAL_APPEND,
    SITE_WAL_REPLAY,
    SITE_BACKEND_SCAN,
)

_lock = threading.Lock()
_plans: List[object] = []


def trip(site: str, **context: object) -> None:
    """Offer every installed plan the chance to act at ``site``.

    Production code calls this at each declared site.  With no plan
    installed it returns immediately; with plans installed, each one's
    ``fire`` runs in installation order on the *calling* thread, so an
    injected exception propagates exactly like a real failure at that
    site would.
    """
    if not _plans:
        return
    with _lock:
        plans = list(_plans)
    for plan in plans:
        plan.fire(site, **context)  # type: ignore[attr-defined]


def install(plan: object) -> None:
    """Register ``plan`` so future trips consult it."""
    if not callable(getattr(plan, "fire", None)):
        raise TypeError("a fault plan must expose fire(site, **context)")
    with _lock:
        _plans.append(plan)


def uninstall(plan: object) -> None:
    """Remove ``plan``; unknown plans are ignored (idempotent)."""
    with _lock:
        try:
            _plans.remove(plan)
        except ValueError:
            pass


@contextmanager
def installed(plan: object) -> Iterator[object]:
    """Install ``plan`` for the duration of a ``with`` block."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall(plan)


def active_plans() -> List[object]:
    """Snapshot of the currently installed plans (outermost first)."""
    with _lock:
        return list(_plans)

"""Deterministic fault plans for chaos runs.

A :class:`FaultPlan` is a seeded list of :class:`FaultRule`\\ s bound
to the named sites of :mod:`repro.testing.sites`.  Each time
production code trips a site, every matching rule draws from its own
``random.Random`` stream and, when it triggers, injects latency
(``time.sleep``) and/or raises the typed :class:`FaultInjected`.

Reproducibility contract: each rule owns an independent PRNG seeded
from ``(plan seed, rule index)``, and draws exactly one number per
visit under a lock — so the decision sequence at a site is a pure
function of the seed and the *visit order*.  Single-threaded runs are
bit-reproducible; concurrent runs are reproducible as a multiset (the
same number of triggers for the same number of visits, whichever
threads make them).

Plans also serialise to/from plain dictionaries, which is how
``repro serve --fault-plan plan.json`` runs manual chaos against a
live service::

    {"seed": 7, "rules": [
        {"site": "store.cube", "probability": 0.3, "fail": true},
        {"site": "http.handler", "probability": 0.05,
         "latency_ms": 40}]}
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

from .sites import SITES, installed as _installed

__all__ = ["FaultInjected", "FaultRule", "FaultPlan"]


class FaultInjected(RuntimeError):
    """The failure a fault rule raises — typed so chaos tests can tell
    an injected fault from a genuine bug surfacing mid-test."""

    def __init__(self, site: str, message: Optional[str] = None) -> None:
        super().__init__(
            message or f"injected fault at site {site!r}"
        )
        self.site = site


@dataclass(frozen=True)
class FaultRule:
    """One injection rule bound to a site.

    Parameters
    ----------
    site:
        A name from :data:`repro.testing.sites.SITES`.
    probability:
        Chance a visit triggers the rule (1.0 = every visit).
    fail:
        Whether a triggered visit raises :class:`FaultInjected`.
    latency:
        Seconds a triggered visit sleeps (before failing, if both).
    after:
        Skip the first ``after`` visits — "the store died mid-screen".
    max_triggers:
        Stop injecting after this many triggers — "and then recovered";
        ``None`` keeps injecting forever.
    """

    site: str
    probability: float = 1.0
    fail: bool = True
    latency: float = 0.0
    after: int = 0
    max_triggers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r} "
                f"(declared sites: {', '.join(SITES)})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.after < 0:
            raise ValueError("after must be non-negative")
        if self.max_triggers is not None and self.max_triggers < 0:
            raise ValueError("max_triggers must be non-negative or None")
        if not self.fail and self.latency == 0.0:
            raise ValueError(
                "a rule must fail, inject latency, or both"
            )


class _RuleState:
    """Mutable per-rule bookkeeping: its PRNG stream and counters."""

    __slots__ = ("rng", "visits", "triggers")

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.visits = 0
        self.triggers = 0


class FaultPlan:
    """A seeded, installable set of fault rules.

    Use :meth:`installed` around the code under test::

        plan = FaultPlan([FaultRule("store.cube", probability=0.3)],
                         seed=11)
        with plan.installed():
            ...   # 30% of cube reads now raise FaultInjected

    The plan records how often each rule fired; :meth:`stats` reports
    visits/triggers per site so tests can assert the chaos actually
    happened.
    """

    def __init__(
        self, rules: Sequence[FaultRule], seed: int = 0
    ) -> None:
        self.rules = tuple(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._states = [
            _RuleState(self._rule_seed(i))
            for i in range(len(self.rules))
        ]

    def _rule_seed(self, index: int) -> int:
        # Independent of PYTHONHASHSEED: a plain affine mix of the plan
        # seed and the rule index.
        return (self.seed * 1_000_003 + index) & 0x7FFFFFFF

    # -- the injection hook (called from production threads) -----------

    def fire(self, site: str, **context: object) -> None:
        """Apply every matching rule to one visit of ``site``."""
        sleep_for = 0.0
        failure: Optional[FaultInjected] = None
        with self._lock:
            for rule, state in zip(self.rules, self._states):
                if rule.site != site:
                    continue
                state.visits += 1
                if state.visits <= rule.after:
                    continue
                if (
                    rule.max_triggers is not None
                    and state.triggers >= rule.max_triggers
                ):
                    continue
                # One draw per eligible visit keeps the stream aligned
                # with the visit count even for probability-1 rules.
                draw = state.rng.random()
                if draw >= rule.probability:
                    continue
                state.triggers += 1
                sleep_for = max(sleep_for, rule.latency)
                if rule.fail and failure is None:
                    failure = FaultInjected(site)
        if sleep_for > 0.0:
            time.sleep(sleep_for)
        if failure is not None:
            raise failure

    # -- lifecycle ------------------------------------------------------

    def installed(self):
        """Context manager installing this plan in the global registry
        (see :func:`repro.testing.sites.installed`)."""
        return _installed(self)

    def reset(self) -> None:
        """Rewind every rule to its initial seeded state."""
        with self._lock:
            self._states = [
                _RuleState(self._rule_seed(i))
                for i in range(len(self.rules))
            ]

    # -- observability --------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-site totals: ``{site: {"visits": v, "triggers": t}}``."""
        out: Dict[str, Dict[str, int]] = {}
        with self._lock:
            for rule, state in zip(self.rules, self._states):
                entry = out.setdefault(
                    rule.site, {"visits": 0, "triggers": 0}
                )
                entry["visits"] += state.visits
                entry["triggers"] += state.triggers
        return out

    def triggers(self, site: Optional[str] = None) -> int:
        """Total trigger count (optionally for one site)."""
        with self._lock:
            return sum(
                state.triggers
                for rule, state in zip(self.rules, self._states)
                if site is None or rule.site == site
            )

    # -- (de)serialisation ---------------------------------------------

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FaultPlan":
        """Build a plan from the JSON shape documented above."""
        if not isinstance(payload, Mapping):
            raise ValueError("a fault plan must be a JSON object")
        raw_rules = payload.get("rules")
        if not isinstance(raw_rules, Sequence) or isinstance(
            raw_rules, (str, bytes)
        ):
            raise ValueError("'rules' must be a list of rule objects")
        rules: List[FaultRule] = []
        for i, raw in enumerate(raw_rules):
            if not isinstance(raw, Mapping):
                raise ValueError(f"rule {i} must be an object")
            known = {
                "site", "probability", "fail", "latency_ms",
                "after", "max_triggers",
            }
            unknown = set(raw) - known
            if unknown:
                raise ValueError(
                    f"rule {i} has unknown keys: {sorted(unknown)}"
                )
            if "site" not in raw:
                raise ValueError(f"rule {i} is missing 'site'")
            rules.append(
                FaultRule(
                    site=str(raw["site"]),
                    probability=float(raw.get("probability", 1.0)),
                    fail=bool(raw.get("fail", True)),
                    latency=float(raw.get("latency_ms", 0.0)) / 1000.0,
                    after=int(raw.get("after", 0)),
                    max_triggers=(
                        None
                        if raw.get("max_triggers") is None
                        else int(raw["max_triggers"])  # type: ignore[arg-type]
                    ),
                )
            )
        seed = payload.get("seed", 0)
        if not isinstance(seed, int):
            raise ValueError("'seed' must be an integer")
        return cls(rules, seed=seed)

    @classmethod
    def from_json(
        cls, source: Union[str, bytes]
    ) -> "FaultPlan":
        """Parse a plan from a JSON string."""
        return cls.from_dict(json.loads(source))

    @classmethod
    def from_file(cls, path: object) -> "FaultPlan":
        """Load a plan from a JSON file (the CLI's ``--fault-plan``)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def to_dict(self) -> Dict[str, object]:
        """The JSON-safe inverse of :meth:`from_dict`."""
        return {
            "seed": self.seed,
            "rules": [
                {
                    "site": r.site,
                    "probability": r.probability,
                    "fail": r.fail,
                    "latency_ms": r.latency * 1000.0,
                    "after": r.after,
                    "max_triggers": r.max_triggers,
                }
                for r in self.rules
            ],
        }

    def __repr__(self) -> str:
        sites = ", ".join(sorted({r.site for r in self.rules}))
        return (
            f"FaultPlan({len(self.rules)} rules at [{sites}], "
            f"seed={self.seed})"
        )

"""Seeded generators for property and differential tests.

The paper's Section IV.A proves boundary behaviour of the
interestingness measure; pinning those proofs needs many random —
but reproducible — count matrices and data sets.  This module
generates them from explicit seeds so a failing case can be replayed
by number, and so CI can sweep several base seeds
(``REPRO_TEST_SEED``) without flaking.

Everything here is test support, but it ships inside the package:
the differential harness is also useful operationally (validating a
cube archive against a raw extract before promoting it to serving).

Imported lazily (not via ``repro.testing.__init__``) because it pulls
in numpy and the dataset layer, which the fault-injection hot path
must not.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..dataset.schema import Attribute, Schema
from ..dataset.table import Dataset

__all__ = [
    "random_count_matrices",
    "proportional_count_matrices",
    "concentrated_count_matrices",
    "random_dataset",
]


def random_count_matrices(
    seed: int,
    n_values: Optional[int] = None,
    n_classes: Optional[int] = None,
    max_count: int = 400,
) -> Tuple[np.ndarray, np.ndarray]:
    """Two random ``(n_values, n_classes)`` count matrices.

    The pair plays ``(D_1, D_2)`` planes of one candidate attribute.
    Rows may be all-zero (values absent from a sub-population), which
    is exactly the edge the property-attribute statistic cares about.
    """
    rng = np.random.default_rng(seed)
    if n_values is None:
        n_values = int(rng.integers(1, 7))
    if n_classes is None:
        n_classes = int(rng.integers(2, 5))
    shape = (n_values, n_classes)
    counts1 = rng.integers(0, max_count, size=shape, dtype=np.int64)
    counts2 = rng.integers(0, max_count, size=shape, dtype=np.int64)
    # Occasionally blank whole rows to exercise disjoint supports.
    for counts in (counts1, counts2):
        mask = rng.random(n_values) < 0.2
        counts[mask] = 0
    return counts1, counts2


def proportional_count_matrices(
    seed: int, ratio: int = 2
) -> Tuple[np.ndarray, np.ndarray]:
    """A pair of matrices in *exact* proportionality.

    Both sub-populations have the same per-value sizes; every value's
    target-class hits in ``D_2`` are exactly ``ratio`` times those in
    ``D_1``.  Then ``cf_2k / cf_1k == cf_2 / cf_1 == ratio`` for every
    value with hits, which is the paper's "Situation 1" — the measure's
    proven minimum ``M_i = 0`` (with the interval guard disabled).
    """
    if ratio < 1:
        raise ValueError("ratio must be a positive integer")
    rng = np.random.default_rng(seed)
    n_values = int(rng.integers(1, 7))
    sizes = rng.integers(20, 200, size=n_values, dtype=np.int64)
    # hits1 small enough that ratio * hits1 still fits in the value.
    hits1 = np.array(
        [rng.integers(0, s // ratio + 1) for s in sizes],
        dtype=np.int64,
    )
    hits2 = ratio * hits1
    counts1 = np.stack([sizes - hits1, hits1], axis=1)
    counts2 = np.stack([sizes - hits2, hits2], axis=1)
    return counts1, counts2


def concentrated_count_matrices(
    seed: int,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """The measure's proven maximum configuration.

    All of ``D_2``'s target-class records concentrate on one value with
    100% confidence, and that value never carries the target class in
    ``D_1`` — so its expected confidence is 0, its excess is 1, and
    ``M_i`` attains the ceiling ``cf_2 · |D_2|`` (the concentrated
    value's ``N_2k``).  Returns ``(counts1, counts2, bad_records)``.
    """
    rng = np.random.default_rng(seed)
    n_values = int(rng.integers(2, 7))
    bad = int(rng.integers(10, 200))
    # D_1: the concentrated value (index 0) has support but zero hits;
    # other values carry hits so the overall cf_1 is positive.
    sizes1 = rng.integers(10, 200, size=n_values, dtype=np.int64)
    hits1 = np.array(
        [0] + [rng.integers(1, s + 1) for s in sizes1[1:]],
        dtype=np.int64,
    )
    counts1 = np.stack([sizes1 - hits1, hits1], axis=1)
    # D_2: value 0 holds every bad record at 100% confidence; the rest
    # of the population spreads over the other values, all good.
    sizes2 = np.zeros(n_values, dtype=np.int64)
    hits2 = np.zeros(n_values, dtype=np.int64)
    sizes2[0] = hits2[0] = bad
    for k in range(1, n_values):
        sizes2[k] = rng.integers(0, 100)
    counts2 = np.stack([sizes2 - hits2, hits2], axis=1)
    return counts1, counts2, bad


def random_dataset(
    seed: int,
    n_rows: Optional[int] = None,
    plant_property: bool = False,
) -> Dataset:
    """A random fully-categorical data set for differential testing.

    Random attribute count/arities, a 2–3 class attribute, and a
    guarantee that the first attribute (the conventional pivot) has at
    least two populated values.  ``plant_property=True`` adds a
    ``Prop`` attribute whose value is a function of the pivot value, so
    the two pivot sub-populations have disjoint ``Prop`` supports and
    the τ = 0.9 property detector must flag it.
    """
    rng = np.random.default_rng(seed)
    if n_rows is None:
        n_rows = int(rng.integers(150, 400))
    n_attrs = int(rng.integers(3, 6))
    n_classes = int(rng.integers(2, 4))

    attrs = []
    columns = {}
    pivot_arity = int(rng.integers(2, 5))
    for i in range(n_attrs):
        arity = pivot_arity if i == 0 else int(rng.integers(2, 6))
        name = f"A{i}"
        attrs.append(
            Attribute(name, values=tuple(f"v{j}" for j in range(arity)))
        )
        col = rng.integers(0, arity, size=n_rows).astype(np.int64)
        columns[name] = col
    # Both conventional pivot sub-populations must be non-empty.
    columns["A0"][0] = 0
    columns["A0"][1] = 1

    if plant_property:
        # Two property values partitioned by pivot parity — disjoint
        # supports, the Section IV.C situation.
        attrs.append(Attribute("Prop", values=("p0", "p1")))
        columns["Prop"] = (columns["A0"] % 2).astype(np.int64)

    attrs.append(
        Attribute("C", values=tuple(f"c{j}" for j in range(n_classes)))
    )
    columns["C"] = rng.integers(0, n_classes, size=n_rows).astype(
        np.int64
    )
    schema = Schema(attrs, class_attribute="C")
    return Dataset.from_columns(schema, columns)

"""Deterministic fault injection and test-data generation.

The serving layer's resilience claims (circuit breaking, graceful
fleet degradation, no-traceback error contract) are only claims until
faults actually happen.  This package makes them happen on demand:

* :mod:`repro.testing.sites` — the registry of named fault sites the
  production code exposes (``store.cube``, ``engine.compare``,
  ``http.handler``, ``persist.load``);
* :mod:`repro.testing.faults` — :class:`FaultPlan`, a seeded,
  reproducible set of latency/exception injection rules installed via
  a context manager (no monkeypatching);
* :mod:`repro.testing.datagen` — seeded random data sets and count
  matrices for the property-based and differential tests (imported
  lazily; it needs numpy, the injection path must not).

Chaos quickstart::

    from repro.testing import FaultPlan, FaultRule

    plan = FaultPlan(
        [FaultRule("store.cube", probability=0.3)], seed=11
    )
    with plan.installed():
        ...  # 30% of cube reads now raise FaultInjected
    print(plan.stats())

The same plan serialises to JSON for manual chaos against a live
service: ``repro serve data.csv --class-attribute C --fault-plan
plan.json``.
"""

from .faults import FaultInjected, FaultPlan, FaultRule
from .sites import (
    SITE_ENGINE_COMPARE,
    SITE_HTTP_HANDLER,
    SITE_PERSIST_LOAD,
    SITE_STORE_CUBE,
    SITES,
)
from . import sites

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "SITES",
    "SITE_STORE_CUBE",
    "SITE_ENGINE_COMPARE",
    "SITE_HTTP_HANDLER",
    "SITE_PERSIST_LOAD",
    "sites",
]

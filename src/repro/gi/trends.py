"""Unit-trend detection on rule-cube columns.

The overall visualization (paper Fig. 5) annotates each attribute/class
grid with trend arrows: "red for decreasing, green for increasing and
gray for stable trends".  A *unit trend* is the behaviour of the rule
confidences of one class as the attribute's values are read in domain
order — meaningful for ordered domains such as discretised intervals or
times of day.

Detection is deliberately simple and robust, in the spirit of the
general-impressions work the system embeds: a trend is *increasing*
(resp. *decreasing*) when the fraction of strictly rising (falling)
consecutive steps reaches ``min_monotonicity`` and the total movement
exceeds ``min_range``; otherwise the column is *stable* when its spread
is small, else *mixed*.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

import numpy as np

from ..cube.rulecube import RuleCube

__all__ = ["Trend", "TrendKind", "detect_trend", "cube_trends"]


class TrendKind:
    """Enumeration of trend labels."""

    INCREASING = "increasing"
    DECREASING = "decreasing"
    STABLE = "stable"
    MIXED = "mixed"

    ALL = (INCREASING, DECREASING, STABLE, MIXED)


class Trend(NamedTuple):
    """Result of trend detection on one confidence sequence."""

    kind: str  #: one of :class:`TrendKind`
    slope: float  #: least-squares slope of confidence vs value index
    spread: float  #: max - min confidence
    confidences: tuple  #: the sequence examined (values with data only)

    @property
    def arrow(self) -> str:
        """The Fig. 5 arrow glyph for this trend."""
        return {
            TrendKind.INCREASING: "↑",
            TrendKind.DECREASING: "↓",
            TrendKind.STABLE: "→",
            TrendKind.MIXED: "↕",
        }[self.kind]


def detect_trend(
    confidences: np.ndarray,
    min_monotonicity: float = 0.7,
    min_range: float = 0.005,
) -> Trend:
    """Classify one confidence sequence.

    Parameters
    ----------
    confidences:
        Rule confidences in attribute-value order (values without data
        should be excluded by the caller).
    min_monotonicity:
        Minimum fraction of consecutive steps that must move in the
        trend direction.
    min_range:
        Minimum (max - min) movement for a non-stable verdict.
    """
    conf = np.asarray(confidences, dtype=float)
    if conf.size <= 1:
        return Trend(TrendKind.STABLE, 0.0, 0.0, tuple(conf))
    spread = float(conf.max() - conf.min())
    x = np.arange(conf.size, dtype=float)
    slope = float(np.polyfit(x, conf, 1)[0])
    if spread < min_range:
        return Trend(TrendKind.STABLE, slope, spread, tuple(conf))
    steps = np.diff(conf)
    moving = steps[steps != 0]
    if moving.size == 0:
        return Trend(TrendKind.STABLE, slope, spread, tuple(conf))
    up_share = float((moving > 0).mean())
    if up_share >= min_monotonicity:
        kind = TrendKind.INCREASING
    elif (1.0 - up_share) >= min_monotonicity:
        kind = TrendKind.DECREASING
    else:
        kind = TrendKind.MIXED
    return Trend(kind, slope, spread, tuple(conf))


def cube_trends(
    cube: RuleCube,
    min_monotonicity: float = 0.7,
    min_range: float = 0.005,
) -> Dict[str, Trend]:
    """Trend of every class along a 2-dimensional cube's attribute.

    ``cube`` must be an (attribute, class) cube.  Returns a map from
    class label to its :class:`Trend`; attribute values with no data
    are skipped so empty cells don't read as drops to zero.
    """
    if len(cube.attributes) != 1:
        raise ValueError(
            "cube_trends expects a 2-dimensional (attribute x class) cube"
        )
    counts = cube.counts
    totals = counts.sum(axis=1)
    conf = cube.confidences()
    present = totals > 0
    out: Dict[str, Trend] = {}
    for c, label in enumerate(cube.class_attribute.values):
        out[label] = detect_trend(
            conf[present, c],
            min_monotonicity=min_monotonicity,
            min_range=min_range,
        )
    return out

"""Automatic findings digest over a whole data set.

The GI miner's pieces — trends, exceptions, influential attributes —
each answer one question about one cube.  Analysts start from a
higher-level question: "what should I look at first?".  This module
composes the pieces into a single ranked digest:

1. the most influential attributes on the class (where to drill);
2. the strongest unit trends (the green/red arrows of Fig. 5 worth
   reading);
3. the most surprising attribute-pair cells (candidate interactions —
   the kind of structure the comparator then pins down).

The digest is deliberately bounded (top-k per section) and rendered as
plain text, mirroring how the deployed system surfaces "general
impressions" before any user-driven exploration.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple

from ..cube.store import CubeStore
from .exceptions import CellException, find_exceptions
from .influence import rank_influential
from .trends import Trend, TrendKind, cube_trends

__all__ = ["Findings", "general_impressions"]


class Findings(NamedTuple):
    """The structured digest behind :func:`general_impressions`."""

    influential: List[Tuple[str, float]]
    trends: List[Tuple[str, str, Trend]]  #: (attribute, class, trend)
    exceptions: List[CellException]

    def to_text(self) -> str:
        """Render the digest as a plain-text report."""
        lines: List[str] = ["General impressions", "=" * 19]
        lines.append("")
        lines.append("Most influential attributes (Cramer's V):")
        for name, score in self.influential:
            lines.append(f"  {score:6.3f}  {name}")

        lines.append("")
        lines.append("Strongest trends (attribute, class):")
        if not self.trends:
            lines.append("  (none above threshold)")
        for attribute, label, trend in self.trends:
            lines.append(
                f"  {trend.arrow} {attribute} / {label}: "
                f"{trend.kind}, spread "
                f"{trend.spread * 100:.2f} points"
            )

        lines.append("")
        lines.append("Most surprising attribute-pair cells:")
        if not self.exceptions:
            lines.append("  (none above threshold)")
        for cell in self.exceptions:
            conds = " & ".join(f"{a}={v}" for a, v in cell.conditions)
            lines.append(
                f"  {conds} -> {cell.class_label}: observed "
                f"{cell.observed} vs expected {cell.expected:.1f} "
                f"(residual {cell.residual:+.1f})"
            )
        return "\n".join(lines)


def general_impressions(
    store: CubeStore,
    top_influential: int = 5,
    top_trends: int = 5,
    top_exceptions: int = 5,
    pair_attributes: Optional[Sequence[str]] = None,
    exception_threshold: float = 4.0,
) -> Findings:
    """Mine the three general impressions and compose the digest.

    Parameters
    ----------
    store:
        Cube store over the analysed data set.
    top_influential / top_trends / top_exceptions:
        Section sizes.
    pair_attributes:
        Attributes whose pair cubes are scanned for exceptions.  The
        default uses the ``top_influential`` attributes — scanning all
        n(n-1)/2 pairs is the off-line job, not the digest's.
    exception_threshold:
        Minimum |standardised residual| for an exception.
    """
    influential = rank_influential(store)[:top_influential]

    trends: List[Tuple[str, str, Trend]] = []
    for name in store.attributes:
        for label, trend in cube_trends(
            store.single_cube(name)
        ).items():
            if trend.kind in (TrendKind.INCREASING,
                              TrendKind.DECREASING):
                trends.append((name, label, trend))
    trends.sort(key=lambda item: -item[2].spread)
    trends = trends[:top_trends]

    if pair_attributes is None:
        pair_attributes = [name for name, _ in influential]
    exceptions: List[CellException] = []
    pair_attributes = list(pair_attributes)
    for i, a in enumerate(pair_attributes):
        for b in pair_attributes[i + 1:]:
            exceptions.extend(
                find_exceptions(
                    store.cube((a, b)),
                    threshold=exception_threshold,
                    min_expected=5.0,
                )
            )
    exceptions.sort(key=lambda cell: -abs(cell.residual))
    exceptions = exceptions[:top_exceptions]

    return Findings(list(influential), trends, exceptions)

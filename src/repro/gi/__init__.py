"""General-impressions (GI) miner: trends, exceptions and influential
attributes — the automated findings layer the system had before the
comparator (paper Section III.B / V.A).
"""

from .trends import Trend, TrendKind, cube_trends, detect_trend
from .exceptions import CellException, find_exceptions
from .influence import (
    chi_square_influence,
    chi_square_statistic,
    information_gain,
    rank_influential,
)
from .report import Findings, general_impressions

__all__ = [
    "Trend",
    "TrendKind",
    "detect_trend",
    "cube_trends",
    "CellException",
    "find_exceptions",
    "chi_square_statistic",
    "chi_square_influence",
    "information_gain",
    "rank_influential",
    "Findings",
    "general_impressions",
]

"""Exception (outlier cell) mining on rule cubes.

Part of the general-impressions layer the system already had before the
comparator was added: "Enhanced with several methods to automatically
find exceptions, trends and influential attributes" (Section III.B).

An exception is a cube cell "with dramatically larger or smaller values
than other cells".  We flag cells whose count deviates from the
expectation under attribute/class independence by a large standardised
(Pearson) residual:

    ``expected = row_total * column_total / grand_total``
    ``residual = (observed - expected) / sqrt(expected)``

For cubes with two condition attributes the expectation is the
product of the three 1-way marginals (the log-linear independence
model), the same family of model Sarawagi's discovery-driven
exploration uses — the full iterative-scaling variant lives in
:mod:`repro.baselines.cube_exceptions` as the related-work baseline.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

import numpy as np

from ..cube.rulecube import RuleCube

__all__ = ["CellException", "find_exceptions"]


class CellException(NamedTuple):
    """One flagged cube cell."""

    conditions: Tuple[Tuple[str, str], ...]  #: ((attribute, value), ...)
    class_label: str
    observed: int
    expected: float
    residual: float  #: signed standardised residual

    @property
    def direction(self) -> str:
        """``"high"`` for excess counts, ``"low"`` for deficits."""
        return "high" if self.residual >= 0 else "low"


def _independence_expectation(counts: np.ndarray) -> np.ndarray:
    """Expected counts under full independence of all axes."""
    total = counts.sum()
    if total == 0:
        return np.zeros_like(counts, dtype=float)
    expected = np.ones_like(counts, dtype=float)
    ndim = counts.ndim
    for axis in range(ndim):
        other = tuple(a for a in range(ndim) if a != axis)
        marginal = counts.sum(axis=other) / total
        shape = [1] * ndim
        shape[axis] = counts.shape[axis]
        expected = expected * marginal.reshape(shape)
    return expected * total


def find_exceptions(
    cube: RuleCube,
    threshold: float = 3.0,
    min_expected: float = 1.0,
    top: int = 0,
) -> List[CellException]:
    """Flag cells whose standardised residual exceeds ``threshold``.

    Parameters
    ----------
    cube:
        Any rule cube (the class axis participates in the model).
    threshold:
        Minimum ``|residual|``; 3.0 is roughly the 99.7% band.
    min_expected:
        Cells expected to hold fewer records than this are skipped —
        the normal approximation is meaningless there.
    top:
        When positive, keep only the ``top`` largest-|residual|
        exceptions.

    Returns
    -------
    list of CellException, sorted by descending ``|residual|``.
    """
    counts = cube.counts.astype(float)
    expected = _independence_expectation(cube.counts)
    with np.errstate(divide="ignore", invalid="ignore"):
        residual = (counts - expected) / np.sqrt(expected)
    residual[~np.isfinite(residual)] = 0.0

    flags = (np.abs(residual) >= threshold) & (expected >= min_expected)
    out: List[CellException] = []
    for idx in np.argwhere(flags):
        idx = tuple(int(i) for i in idx)
        conditions = tuple(
            (attr.name, attr.value_of(code))
            for attr, code in zip(cube.attributes, idx[:-1])
        )
        out.append(
            CellException(
                conditions=conditions,
                class_label=cube.class_attribute.value_of(idx[-1]),
                observed=int(cube.counts[idx]),
                expected=float(expected[idx]),
                residual=float(residual[idx]),
            )
        )
    out.sort(key=lambda e: -abs(e.residual))
    if top > 0:
        out = out[:top]
    return out

"""Influential-attribute scoring (general impressions).

The third general impression the system mines alongside trends and
exceptions: which attributes *matter* for the class at all.  An
attribute is influential when the class distribution varies strongly
across its values; we provide the two standard measures:

* :func:`chi_square_influence` — the chi-square statistic of the
  (attribute x class) contingency table, normalised to Cramer's V so
  attributes of different arities are comparable.
* :func:`information_gain` — mutual information between attribute and
  class (the decision-tree split criterion), in bits.

Both read a 2-dimensional rule cube, so they run at cube speed
regardless of the raw data size, and both return 0 for attributes
independent of the class.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cube.rulecube import RuleCube
from ..cube.store import CubeStore

__all__ = [
    "chi_square_statistic",
    "chi_square_influence",
    "information_gain",
    "rank_influential",
]


def _contingency(cube: RuleCube) -> np.ndarray:
    if len(cube.attributes) != 1:
        raise ValueError(
            "influence measures expect a 2-dimensional "
            "(attribute x class) cube"
        )
    return cube.counts.astype(float)


def chi_square_statistic(cube: RuleCube) -> float:
    """Pearson chi-square of the attribute/class contingency table."""
    table = _contingency(cube)
    total = table.sum()
    if total == 0:
        return 0.0
    row = table.sum(axis=1, keepdims=True)
    col = table.sum(axis=0, keepdims=True)
    expected = row @ col / total
    mask = expected > 0
    return float(
        (((table - expected) ** 2)[mask] / expected[mask]).sum()
    )


def chi_square_influence(cube: RuleCube) -> float:
    """Cramer's V in [0, 1]: arity-normalised chi-square."""
    table = _contingency(cube)
    total = table.sum()
    if total == 0:
        return 0.0
    chi2 = chi_square_statistic(cube)
    r = int((table.sum(axis=1) > 0).sum())
    c = int((table.sum(axis=0) > 0).sum())
    k = min(r - 1, c - 1)
    if k <= 0:
        return 0.0
    return float(np.sqrt(chi2 / (total * k)))


def information_gain(cube: RuleCube) -> float:
    """Mutual information I(attribute; class) in bits."""
    table = _contingency(cube)
    total = table.sum()
    if total == 0:
        return 0.0
    p = table / total
    px = p.sum(axis=1, keepdims=True)
    py = p.sum(axis=0, keepdims=True)
    outer = px @ py
    mask = (p > 0) & (outer > 0)
    return float((p[mask] * np.log2(p[mask] / outer[mask])).sum())


def rank_influential(
    store: CubeStore,
    attributes: Optional[Sequence[str]] = None,
    measure: str = "cramers_v",
) -> List[Tuple[str, float]]:
    """Rank attributes by influence on the class, strongest first.

    ``measure`` is ``"cramers_v"``, ``"chi2"`` or ``"info_gain"``.
    """
    measures = {
        "cramers_v": chi_square_influence,
        "chi2": chi_square_statistic,
        "info_gain": information_gain,
    }
    if measure not in measures:
        raise ValueError(
            f"unknown influence measure {measure!r}; expected one of "
            f"{sorted(measures)}"
        )
    fn = measures[measure]
    if attributes is None:
        attributes = store.attributes
    scored = [(name, fn(store.single_cube(name))) for name in attributes]
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return scored
